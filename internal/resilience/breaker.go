package resilience

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// BreakerConfig tunes a circuit breaker.
type BreakerConfig struct {
	// Threshold trips the breaker when this many of the last Window
	// outcomes failed (default 5; < 0 disables the breaker).
	Threshold int
	// Window is how many recent outcomes are considered (default 2×
	// Threshold).
	Window int
	// OpenFor is how long a tripped breaker fast-fails before letting a
	// half-open probe through (default 1 s).
	OpenFor time.Duration
	// Probes is how many concurrent half-open probe requests are allowed
	// (default 1).
	Probes int
	// Now is injectable for tests; nil means time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = 5
	}
	if c.Window <= 0 {
		c.Window = 2 * c.Threshold
	}
	if c.Window < c.Threshold {
		c.Window = c.Threshold
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker states.
const (
	stateClosed   = iota // normal operation, outcomes tracked in the window
	stateOpen            // fast-failing; waiting out OpenFor
	stateHalfOpen        // letting up to Probes requests test the device
)

// Breaker is one device's circuit breaker: closed while the device
// behaves, open (fast-failing) after Threshold of the last Window
// requests failed, half-open after OpenFor — a limited number of probes
// go through, and their outcome closes or re-opens the circuit. It is
// safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    int
	window   *metrics.FailureWindow
	openedAt time.Time
	inProbe  int // outstanding half-open probes
	trips    int64
	trans    BreakerTransitions
}

// BreakerTransitions counts every state-machine edge a breaker has
// taken. Unlike the point-in-time Open() snapshot, these are monotonic,
// so a post-mortem can reconstruct flap behavior (a breaker that tripped
// and recovered between two scrapes still shows up here).
type BreakerTransitions struct {
	ClosedOpen     int64 // closed → open (window hit Threshold)
	OpenHalfOpen   int64 // open → half-open (cool-down expired, probe let through)
	HalfOpenClosed int64 // half-open → closed (probe succeeded)
	HalfOpenOpen   int64 // half-open → open (probe failed)
}

// add accumulates o into t.
func (t *BreakerTransitions) add(o BreakerTransitions) {
	t.ClosedOpen += o.ClosedOpen
	t.OpenHalfOpen += o.OpenHalfOpen
	t.HalfOpenClosed += o.HalfOpenClosed
	t.HalfOpenOpen += o.HalfOpenOpen
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, window: metrics.NewFailureWindow(cfg.Window)}
}

// Allow reports whether a request may proceed now: nil to proceed,
// ErrCircuitOpen to fast-fail. Every allowed request MUST be matched by
// exactly one Record call (the half-open probe budget is reserved here
// and released there).
func (b *Breaker) Allow() error {
	if b.cfg.Threshold < 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return nil
	case stateOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenFor {
			return ErrCircuitOpen
		}
		b.state = stateHalfOpen
		b.inProbe = 0
		b.trans.OpenHalfOpen++
		fallthrough
	default: // stateHalfOpen
		if b.inProbe >= b.cfg.Probes {
			return ErrCircuitOpen
		}
		b.inProbe++
		return nil
	}
}

// Record feeds one allowed request's outcome back into the breaker.
func (b *Breaker) Record(err error) {
	if b.cfg.Threshold < 0 {
		return
	}
	failed := err != nil
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		b.window.Observe(failed)
		if b.window.Failures() >= b.cfg.Threshold {
			b.trip()
		}
	case stateHalfOpen:
		if b.inProbe > 0 {
			b.inProbe--
		}
		if failed {
			b.trip()
		} else {
			b.state = stateClosed
			b.window.Reset()
			b.trans.HalfOpenClosed++
		}
	case stateOpen:
		// A late Record from a request allowed before the trip; the
		// window restarts from scratch on the next close, so drop it.
	}
}

// trip moves to open and stamps the cool-down. Caller holds b.mu.
func (b *Breaker) trip() {
	if b.state == stateHalfOpen {
		b.trans.HalfOpenOpen++
	} else {
		b.trans.ClosedOpen++
	}
	b.state = stateOpen
	b.openedAt = b.cfg.Now()
	b.window.Reset()
	b.inProbe = 0
	b.trips++
}

// Open reports whether the breaker is currently fast-failing (open and
// within its cool-down).
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == stateOpen && b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenFor
}

// Trips returns how many times the breaker has tripped.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Transitions snapshots the breaker's cumulative state-transition
// counts.
func (b *Breaker) Transitions() BreakerTransitions {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trans
}
