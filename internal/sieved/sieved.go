// Package sieved implements SieveStore-D, the discrete SieveStore variant
// (§3.2): every access is logged as an <address, 1> tuple into one of R
// hash-partitioned spill files; periodically (and at each epoch boundary) a
// map-reduction-like per-key reduction sorts each partition and counts
// contiguous runs of the same address; blocks whose epoch access count
// reaches the threshold (t = 10 in the paper) are batch-allocated for the
// next epoch, during which no replacement occurs.
//
// The metastate lives entirely in files on the SieveStore node's local
// storage — never on the access critical path and never in the SSD cache.
package sieved

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/block"
)

// DefaultThreshold is the paper's tuned epoch access-count threshold
// (blocks with ≥10 accesses in an epoch are allocated for the next epoch;
// insensitive in the 8–20 range, §5.1).
const DefaultThreshold = 10

// DefaultPartitions is the default number of hash partitions R.
const DefaultPartitions = 16

// errClosed is returned by operations on a closed Logger.
var errClosed = fmt.Errorf("sieved: logger is closed")

// partition is one hash partition of the access log: an append-only spill
// file with its own mutex, so concurrent loggers hashing to different
// partitions never contend. Keys hash to partitions with the same 64-bit
// avalanche mix core.Store hashes shards with — when the partition count
// is a multiple of the shard count, each partition holds keys of exactly
// one shard.
type partition struct {
	// rewrite serializes whole-file rewrites (Compact, Reset, salvage)
	// against the readers that run without mu (Select, Counts): mu alone
	// only excludes appends, not the read window, and a rewrite truncates
	// the inode the reader is positioned in. Lock order: mu, then rewrite.
	rewrite sync.RWMutex

	mu sync.Mutex
	w  *bufio.Writer
	f  *os.File
	// tuples counts the live tuples (for compaction bookkeeping and tests).
	tuples int64
	// mark records the file offset up to which the most recent Select
	// reduced the log (-1: no Select pending). Reset keeps the tuples
	// appended past the mark — accesses logged while an epoch transition
	// was in flight count toward the next epoch instead of being dropped.
	mark int64
}

// Logger is the access log: R append-only partition files of
// <address, count> tuples.
//
// Logger is safe for concurrent use, and appends to distinct partitions
// proceed in parallel (each partition has its own lock). In particular
// Select may reduce the epoch's logs while other goroutines keep
// appending: the reduction covers exactly the tuples flushed at its
// start, and appends that race it are preserved for the next epoch by the
// matching Reset. Whole-file rewrites (Compact, Reset) are serialized
// against the lock-free partition readers by a per-partition rewrite
// lock, so a reduction racing them sees either the old or the new file
// contents, never a torn read.
type Logger struct {
	dir    string
	parts  []*partition
	closed atomic.Bool
}

// NewLogger creates a logger with the given partition count, writing spill
// files under dir (created if needed). Existing partition files are
// truncated; use OpenLogger to resume an interrupted epoch.
func NewLogger(dir string, partitions int) (*Logger, error) {
	return makeLogger(dir, partitions, false)
}

// OpenLogger opens (or creates) a logger that *appends* to any existing
// partition files under dir — crash recovery for the epoch in progress:
// tuples logged before a restart still count toward the epoch's reduction.
func OpenLogger(dir string, partitions int) (*Logger, error) {
	return makeLogger(dir, partitions, true)
}

func makeLogger(dir string, partitions int, resume bool) (*Logger, error) {
	if partitions < 1 {
		return nil, fmt.Errorf("sieved: partitions must be ≥1, got %d", partitions)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sieved: %w", err)
	}
	l := &Logger{dir: dir}
	for p := 0; p < partitions; p++ {
		flags := os.O_RDWR | os.O_CREATE | os.O_TRUNC
		if resume {
			flags = os.O_RDWR | os.O_CREATE | os.O_APPEND
		}
		f, err := os.OpenFile(l.partitionPath(p), flags, 0o644)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("sieved: %w", err)
		}
		l.parts = append(l.parts, &partition{
			f:    f,
			w:    bufio.NewWriterSize(f, 1<<16),
			mark: -1,
		})
	}
	if resume {
		// Salvage each partition: reduce whatever decodes cleanly and
		// rewrite the file, dropping a torn final tuple left by a crash
		// mid-write. Afterwards every partition is compact and valid.
		for p := range l.parts {
			part := l.parts[p]
			part.mu.Lock()
			salvaged, err := l.readPartitionLocked(p, true)
			if err == nil {
				err = l.rewritePartitionLocked(p, salvaged)
			}
			part.mu.Unlock()
			if err != nil {
				l.Close()
				return nil, err
			}
		}
	}
	return l, nil
}

func (l *Logger) partitionPath(p int) string {
	return filepath.Join(l.dir, fmt.Sprintf("part-%04d.log", p))
}

// partitionIndex selects the spill file for a key (the paper's hash
// function on the address).
func (l *Logger) partitionIndex(key block.Key) int {
	x := uint64(key)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(len(l.parts)))
}

// Log appends an <address, 1> tuple for key.
func (l *Logger) Log(key block.Key) error { return l.logTuple(key, 1) }

// LogBatch appends an <address, 1> tuple for every key, taking each
// touched partition's lock once. Order within a partition is irrelevant
// (the reduction sums counts), so keys are grouped by partition first.
func (l *Logger) LogBatch(keys []block.Key) error {
	switch len(keys) {
	case 0:
		return nil
	case 1:
		return l.logTuple(keys[0], 1)
	}
	if l.closed.Load() {
		return errClosed
	}
	type kp struct {
		key block.Key
		p   int
	}
	idx := make([]kp, len(keys))
	for i, k := range keys {
		idx[i] = kp{key: k, p: l.partitionIndex(k)}
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i].p < idx[j].p })
	for i := 0; i < len(idx); {
		p := idx[i].p
		part := l.parts[p]
		part.mu.Lock()
		if l.closed.Load() {
			part.mu.Unlock()
			return errClosed
		}
		for ; i < len(idx) && idx[i].p == p; i++ {
			if err := l.appendLocked(part, idx[i].key, 1); err != nil {
				part.mu.Unlock()
				return err
			}
		}
		part.mu.Unlock()
	}
	return nil
}

// LogRequest logs every block the request touches.
func (l *Logger) LogRequest(req *block.Request) error {
	n := req.Blocks()
	first := req.Offset / block.Size
	if n == 1 {
		return l.Log(block.MakeKey(req.Server, req.Volume, first))
	}
	keys := make([]block.Key, n)
	for i := range keys {
		keys[i] = block.MakeKey(req.Server, req.Volume, first+uint64(i))
	}
	return l.LogBatch(keys)
}

// appendLocked encodes one tuple into partition part's write buffer.
// Caller must hold part.mu.
func (l *Logger) appendLocked(part *partition, key block.Key, count int64) error {
	var buf [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(key))
	n += binary.PutUvarint(buf[n:], uint64(count))
	if _, err := part.w.Write(buf[:n]); err != nil {
		return err
	}
	part.tuples++
	return nil
}

func (l *Logger) logTuple(key block.Key, count int64) error {
	if l.closed.Load() {
		return errClosed
	}
	part := l.parts[l.partitionIndex(key)]
	part.mu.Lock()
	defer part.mu.Unlock()
	if l.closed.Load() {
		return errClosed
	}
	return l.appendLocked(part, key, count)
}

// TupleCount returns the total number of live tuples across partitions.
func (l *Logger) TupleCount() int64 {
	var total int64
	for _, part := range l.parts {
		part.mu.Lock()
		total += part.tuples
		part.mu.Unlock()
	}
	return total
}

// LoggerStats reports the access log's footprint across its partitions —
// the observability layer exports these as gauges.
type LoggerStats struct {
	Partitions         int   // partition file count
	Tuples             int64 // live tuples across all partitions
	MaxPartitionTuples int64 // largest single partition (hash-skew indicator)
	PendingEpochs      int64 // partitions holding a Select mark not yet Reset
}

// Stats snapshots the logger's partition counters.
func (l *Logger) Stats() LoggerStats {
	st := LoggerStats{Partitions: len(l.parts)}
	for _, part := range l.parts {
		part.mu.Lock()
		t := part.tuples
		marked := part.mark >= 0
		part.mu.Unlock()
		st.Tuples += t
		if t > st.MaxPartitionTuples {
			st.MaxPartitionTuples = t
		}
		if marked {
			st.PendingEpochs++
		}
	}
	return st
}

// tuple is one <address, count> record.
type tuple struct {
	key   block.Key
	count int64
}

// flushPartitionLocked flushes partition p's write buffer and returns the
// resulting file size — a tuple boundary, since every append happens in
// full under the partition lock. Callers must hold the partition's mu.
func (l *Logger) flushPartitionLocked(p int) (int64, error) {
	if l.closed.Load() {
		return 0, errClosed
	}
	part := l.parts[p]
	if err := part.w.Flush(); err != nil {
		return 0, err
	}
	fi, err := part.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// readPartitionRange decodes and per-key-reduces the tuples in byte range
// [from, to) of partition p's file: the tuples are sorted by address and
// contiguous runs of the same address are summed — the paper's sort +
// run-length reduction. The range must start and end on tuple boundaries
// (salvage mode instead drops a torn trailing tuple). It opens the file
// independently and runs without the partition's mu — appends beyond `to`
// are invisible and harmless — but holds the partition's rewrite lock
// (shared) so a concurrent Compact or Reset cannot truncate the file
// mid-read.
func (l *Logger) readPartitionRange(p int, from, to int64, salvage bool) ([]tuple, error) {
	l.parts[p].rewrite.RLock()
	defer l.parts[p].rewrite.RUnlock()
	f, err := os.Open(l.partitionPath(p))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return nil, err
	}
	r := bufio.NewReaderSize(io.LimitReader(f, to-from), 1<<16)
	var tuples []tuple
	for {
		k, err := binary.ReadUvarint(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			if salvage {
				break
			}
			return nil, fmt.Errorf("sieved: partition %d: %w", p, err)
		}
		c, err := binary.ReadUvarint(r)
		if err != nil {
			if salvage {
				break
			}
			return nil, fmt.Errorf("sieved: partition %d: truncated tuple: %w", p, err)
		}
		tuples = append(tuples, tuple{key: block.Key(k), count: int64(c)})
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].key < tuples[j].key })
	// Run-length reduction in place.
	out := tuples[:0]
	for _, t := range tuples {
		if n := len(out); n > 0 && out[n-1].key == t.key {
			out[n-1].count += t.count
		} else {
			out = append(out, t)
		}
	}
	return out, nil
}

// readPartitionLocked flushes and reduces all of partition p under its mu.
func (l *Logger) readPartitionLocked(p int, salvage bool) ([]tuple, error) {
	size, err := l.flushPartitionLocked(p)
	if err != nil {
		return nil, err
	}
	return l.readPartitionRange(p, 0, size, salvage)
}

// Compact performs the paper's incremental per-key reduction: each
// partition is rewritten with one tuple per address, shrinking the logs
// without losing counts. It may be called at any time between epochs; a
// pending Select mark is invalidated (the next Reset clears everything).
func (l *Logger) Compact() error {
	for p := range l.parts {
		part := l.parts[p]
		part.mu.Lock()
		reduced, err := l.readPartitionLocked(p, false)
		if err == nil {
			err = l.rewritePartitionLocked(p, reduced)
		}
		if err != nil {
			part.mu.Unlock()
			return err
		}
		part.mark = -1
		part.mu.Unlock()
	}
	return nil
}

// rewritePartitionLocked replaces partition p's file with the given
// tuples. Callers must hold the partition's mu; the partition's rewrite
// lock (acquired here, after mu — always in that order) excludes the
// lock-free readers for the duration of the truncate-and-rewrite.
func (l *Logger) rewritePartitionLocked(p int, tuples []tuple) error {
	part := l.parts[p]
	part.rewrite.Lock()
	defer part.rewrite.Unlock()
	f, err := os.Create(l.partitionPath(p))
	if err != nil {
		return err
	}
	part.f.Close()
	part.f = f
	part.w = bufio.NewWriterSize(f, 1<<16)
	part.tuples = 0
	for _, t := range tuples {
		if err := l.appendLocked(part, t.key, t.count); err != nil {
			return err
		}
	}
	return part.w.Flush()
}

// Counts runs the full reduction and calls fn for every (address, count)
// pair of the current epoch, in no particular order. Tuples appended
// concurrently with the call may or may not be included.
func (l *Logger) Counts(fn func(key block.Key, count int64)) error {
	for p := range l.parts {
		l.parts[p].mu.Lock()
		size, err := l.flushPartitionLocked(p)
		l.parts[p].mu.Unlock()
		if err != nil {
			return err
		}
		reduced, err := l.readPartitionRange(p, 0, size, false)
		if err != nil {
			return err
		}
		for _, t := range reduced {
			fn(t.key, t.count)
		}
	}
	return nil
}

// Select reduces the epoch's logs and returns every block whose access
// count meets the threshold — ordered by descending count so callers can
// truncate to cache capacity keeping the hottest blocks. The logs are NOT
// reset: a failed epoch transition can simply retry (or give up) without
// losing the epoch's counts. Call Reset once the transition has succeeded.
//
// Logging may continue concurrently: the selection covers exactly the
// tuples flushed when each partition is visited, and a mark is recorded so
// the matching Reset carries later appends into the next epoch. Each
// partition's lock is held only for its flush, never across file reads,
// so the hot logging path is not blocked behind the reduction.
func (l *Logger) Select(threshold int64) ([]block.Key, error) {
	var selected []tuple
	for p := range l.parts {
		part := l.parts[p]
		part.mu.Lock()
		size, err := l.flushPartitionLocked(p)
		part.mu.Unlock()
		if err != nil {
			return nil, err
		}
		reduced, err := l.readPartitionRange(p, 0, size, false)
		if err != nil {
			return nil, err
		}
		part.mu.Lock()
		part.mark = size
		part.mu.Unlock()
		for _, t := range reduced {
			if t.count >= threshold {
				selected = append(selected, t)
			}
		}
	}
	sort.Slice(selected, func(i, j int) bool {
		if selected[i].count != selected[j].count {
			return selected[i].count > selected[j].count
		}
		return selected[i].key < selected[j].key
	})
	keys := make([]block.Key, len(selected))
	for i, t := range selected {
		keys[i] = t.key
	}
	return keys, nil
}

// Reset starts the next epoch. Tuples covered by the most recent Select
// are dropped; tuples appended after it (accesses logged while the epoch
// transition was in flight) are kept and count toward the new epoch.
// Without a pending Select the logs are cleared outright.
//
// A failing partition does not stop the sweep: the remaining partitions
// are still reset and the first error is returned — aborting mid-way
// would leave every later partition unreset, double-counting its
// already-selected tuples into the next epoch. A partition that could not
// be read keeps its mark (a retry can still finish the job); one whose
// rewrite failed has its mark cleared, since the file's contents are no
// longer what the mark was measured against.
func (l *Logger) Reset() error {
	if l.closed.Load() {
		return errClosed
	}
	var first error
	for p := range l.parts {
		part := l.parts[p]
		part.mu.Lock()
		var tail []tuple
		if mark := part.mark; mark >= 0 {
			size, err := l.flushPartitionLocked(p)
			if err != nil {
				if first == nil {
					first = err
				}
				part.mu.Unlock()
				continue
			}
			if size > mark {
				// Read the tail under the partition lock so no append can
				// land between the read and the rewrite and be lost.
				if tail, err = l.readPartitionRange(p, mark, size, false); err != nil {
					if first == nil {
						first = err
					}
					part.mu.Unlock()
					continue
				}
			}
		}
		if err := l.rewritePartitionLocked(p, tail); err != nil {
			if first == nil {
				first = err
			}
		}
		part.mark = -1
		part.mu.Unlock()
	}
	return first
}

// EndEpoch is Select followed by Reset: it reduces the epoch's logs,
// selects every block whose access count meets the threshold, and resets
// the logs for the next epoch. Callers that must stay consistent across a
// failure between the two steps (e.g. a batch allocation that fetches the
// selected blocks) should call Select and Reset themselves.
func (l *Logger) EndEpoch(threshold int64) ([]block.Key, error) {
	keys, err := l.Select(threshold)
	if err != nil {
		return nil, err
	}
	if err := l.Reset(); err != nil {
		return nil, err
	}
	return keys, nil
}

// Close flushes and closes all partitions. The spill files remain on disk
// (the caller owns the directory).
func (l *Logger) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	var first error
	for _, part := range l.parts {
		part.mu.Lock()
		if err := part.w.Flush(); err != nil && first == nil {
			first = err
		}
		if err := part.f.Close(); err != nil && first == nil {
			first = err
		}
		part.mu.Unlock()
	}
	return first
}
