package sieved

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/block"
)

func TestOpenLoggerResumesEpoch(t *testing.T) {
	dir := t.TempDir()
	l1, err := NewLogger(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := l1.Log(key(7)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := l1.Log(key(9)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l1.Close(); err != nil { // simulate a clean shutdown mid-epoch
		t.Fatal(err)
	}

	l2, err := OpenLogger(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// Continue the epoch: key 9 gets 5 more accesses, crossing the
	// threshold only if the pre-restart tuples survived.
	for i := 0; i < 5; i++ {
		if err := l2.Log(key(9)); err != nil {
			t.Fatal(err)
		}
	}
	selected, err := l2.EndEpoch(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) != 2 {
		t.Fatalf("selected = %v, want keys 7 and 9", selected)
	}
	if selected[0] != key(7) || selected[1] != key(9) {
		t.Errorf("selected = %v", selected)
	}
}

func TestNewLoggerTruncatesOldEpoch(t *testing.T) {
	dir := t.TempDir()
	l1, err := NewLogger(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l1.Log(key(1)); err != nil {
			t.Fatal(err)
		}
	}
	l1.Close()
	// NewLogger (unlike OpenLogger) starts a fresh epoch.
	l2, err := NewLogger(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	selected, err := l2.EndEpoch(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) != 0 {
		t.Errorf("fresh logger inherited tuples: %v", selected)
	}
}

func TestOpenLoggerSalvagesTornTuple(t *testing.T) {
	dir := t.TempDir()
	l1, err := NewLogger(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if err := l1.Log(key(3)); err != nil {
			t.Fatal(err)
		}
	}
	l1.Close()
	// Simulate a crash mid-write: append garbage that decodes as a key
	// varint but is truncated before the count.
	path := filepath.Join(dir, "part-0000.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 0xFF continues a varint forever: a torn multi-byte varint tail.
	if _, err := f.Write([]byte{0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := OpenLogger(dir, 1)
	if err != nil {
		t.Fatalf("salvage failed: %v", err)
	}
	defer l2.Close()
	selected, err := l2.EndEpoch(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) != 1 || selected[0] != key(3) {
		t.Errorf("salvaged selection = %v", selected)
	}
}

func TestOpenLoggerOnEmptyDirIsFresh(t *testing.T) {
	l, err := OpenLogger(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Log(block.MakeKey(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	sel, err := l.EndEpoch(1)
	if err != nil || len(sel) != 1 {
		t.Errorf("sel = %v, err = %v", sel, err)
	}
}
