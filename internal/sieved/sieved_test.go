package sieved

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/block"
)

func key(n uint64) block.Key { return block.MakeKey(1, 0, n) }

func newTestLogger(t *testing.T, partitions int) *Logger {
	t.Helper()
	l, err := NewLogger(t.TempDir(), partitions)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestNewLoggerValidates(t *testing.T) {
	if _, err := NewLogger(t.TempDir(), 0); err == nil {
		t.Error("want error for 0 partitions")
	}
}

func TestCountsAggregate(t *testing.T) {
	l := newTestLogger(t, 4)
	want := map[block.Key]int64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := key(uint64(rng.Intn(300)))
		if err := l.Log(k); err != nil {
			t.Fatal(err)
		}
		want[k]++
	}
	got := map[block.Key]int64{}
	if err := l.Counts(func(k block.Key, c int64) { got[k] += c }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("key %v: got %d, want %d", k, got[k], c)
		}
	}
}

func TestLogRequestCountsBlocks(t *testing.T) {
	l := newTestLogger(t, 2)
	req := block.Request{Server: 1, Volume: 0, Offset: 0, Length: 1536}
	if err := l.LogRequest(&req); err != nil {
		t.Fatal(err)
	}
	got := map[block.Key]int64{}
	if err := l.Counts(func(k block.Key, c int64) { got[k] += c }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d blocks, want 3", len(got))
	}
}

func TestCompactPreservesCountsAndShrinks(t *testing.T) {
	l := newTestLogger(t, 4)
	for i := 0; i < 1000; i++ {
		if err := l.Log(key(uint64(i % 50))); err != nil {
			t.Fatal(err)
		}
	}
	if l.TupleCount() != 1000 {
		t.Fatalf("tuples = %d", l.TupleCount())
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if l.TupleCount() != 50 {
		t.Errorf("after compact: %d tuples, want 50", l.TupleCount())
	}
	got := map[block.Key]int64{}
	if err := l.Counts(func(k block.Key, c int64) { got[k] += c }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got[key(uint64(i))] != 20 {
			t.Fatalf("key %d count = %d, want 20", i, got[key(uint64(i))])
		}
	}
	// Compaction must also be incremental: more logging afterwards merges.
	if err := l.Log(key(0)); err != nil {
		t.Fatal(err)
	}
	got0 := int64(0)
	if err := l.Counts(func(k block.Key, c int64) {
		if k == key(0) {
			got0 += c
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got0 != 21 {
		t.Errorf("post-compact count = %d, want 21", got0)
	}
}

func TestEndEpochSelectsAndResets(t *testing.T) {
	l := newTestLogger(t, 8)
	// Block 1: 15 accesses, block 2: 10, block 3: 9, block 4: 1.
	for i, n := range map[uint64]int{1: 15, 2: 10, 3: 9, 4: 1} {
		for j := 0; j < n; j++ {
			if err := l.Log(key(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	selected, err := l.EndEpoch(DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) != 2 {
		t.Fatalf("selected %v", selected)
	}
	// Descending count order: block 1 first.
	if selected[0] != key(1) || selected[1] != key(2) {
		t.Errorf("selected order = %v", selected)
	}
	// Logs must be reset.
	if l.TupleCount() != 0 {
		t.Errorf("tuples after epoch = %d", l.TupleCount())
	}
	next, err := l.EndEpoch(DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != 0 {
		t.Errorf("second epoch should be empty, got %v", next)
	}
}

func TestEndEpochDeterministicTies(t *testing.T) {
	l := newTestLogger(t, 8)
	for _, k := range []uint64{9, 3, 7, 1} {
		for j := 0; j < 12; j++ {
			if err := l.Log(key(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sel, err := l.EndEpoch(10)
	if err != nil {
		t.Fatal(err)
	}
	want := []block.Key{key(1), key(3), key(7), key(9)}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("tie order = %v", sel)
		}
	}
}

func TestLoggerClosedRejectsWrites(t *testing.T) {
	l := newTestLogger(t, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Log(key(1)); err == nil {
		t.Error("Log after Close should fail")
	}
	if err := l.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestSpillFilesOnDisk(t *testing.T) {
	dir := t.TempDir()
	l, err := NewLogger(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 100; i++ {
		if err := l.Log(key(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, "part-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Errorf("found %d spill files, want 3", len(matches))
	}
	// Partitioning should spread keys (not all in one file).
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, m := range matches {
		if fi, err := os.Stat(m); err == nil && fi.Size() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("only %d non-empty partitions; hash partitioning broken?", nonEmpty)
	}
}

func BenchmarkLogAndReduce(b *testing.B) {
	l, err := NewLogger(b.TempDir(), DefaultPartitions)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Log(key(uint64(i % 100000))); err != nil {
			b.Fatal(err)
		}
		// Periodic incremental reduction, as the paper prescribes.
		if i > 0 && i%1_000_000 == 0 {
			b.StopTimer()
			if err := l.Compact(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}
