package sieved

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/block"
)

func key(n uint64) block.Key { return block.MakeKey(1, 0, n) }

func newTestLogger(t *testing.T, partitions int) *Logger {
	t.Helper()
	l, err := NewLogger(t.TempDir(), partitions)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestNewLoggerValidates(t *testing.T) {
	if _, err := NewLogger(t.TempDir(), 0); err == nil {
		t.Error("want error for 0 partitions")
	}
}

func TestCountsAggregate(t *testing.T) {
	l := newTestLogger(t, 4)
	want := map[block.Key]int64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := key(uint64(rng.Intn(300)))
		if err := l.Log(k); err != nil {
			t.Fatal(err)
		}
		want[k]++
	}
	got := map[block.Key]int64{}
	if err := l.Counts(func(k block.Key, c int64) { got[k] += c }); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("key %v: got %d, want %d", k, got[k], c)
		}
	}
}

func TestLogRequestCountsBlocks(t *testing.T) {
	l := newTestLogger(t, 2)
	req := block.Request{Server: 1, Volume: 0, Offset: 0, Length: 1536}
	if err := l.LogRequest(&req); err != nil {
		t.Fatal(err)
	}
	got := map[block.Key]int64{}
	if err := l.Counts(func(k block.Key, c int64) { got[k] += c }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d blocks, want 3", len(got))
	}
}

func TestCompactPreservesCountsAndShrinks(t *testing.T) {
	l := newTestLogger(t, 4)
	for i := 0; i < 1000; i++ {
		if err := l.Log(key(uint64(i % 50))); err != nil {
			t.Fatal(err)
		}
	}
	if l.TupleCount() != 1000 {
		t.Fatalf("tuples = %d", l.TupleCount())
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if l.TupleCount() != 50 {
		t.Errorf("after compact: %d tuples, want 50", l.TupleCount())
	}
	got := map[block.Key]int64{}
	if err := l.Counts(func(k block.Key, c int64) { got[k] += c }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got[key(uint64(i))] != 20 {
			t.Fatalf("key %d count = %d, want 20", i, got[key(uint64(i))])
		}
	}
	// Compaction must also be incremental: more logging afterwards merges.
	if err := l.Log(key(0)); err != nil {
		t.Fatal(err)
	}
	got0 := int64(0)
	if err := l.Counts(func(k block.Key, c int64) {
		if k == key(0) {
			got0 += c
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got0 != 21 {
		t.Errorf("post-compact count = %d, want 21", got0)
	}
}

func TestEndEpochSelectsAndResets(t *testing.T) {
	l := newTestLogger(t, 8)
	// Block 1: 15 accesses, block 2: 10, block 3: 9, block 4: 1.
	for i, n := range map[uint64]int{1: 15, 2: 10, 3: 9, 4: 1} {
		for j := 0; j < n; j++ {
			if err := l.Log(key(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	selected, err := l.EndEpoch(DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) != 2 {
		t.Fatalf("selected %v", selected)
	}
	// Descending count order: block 1 first.
	if selected[0] != key(1) || selected[1] != key(2) {
		t.Errorf("selected order = %v", selected)
	}
	// Logs must be reset.
	if l.TupleCount() != 0 {
		t.Errorf("tuples after epoch = %d", l.TupleCount())
	}
	next, err := l.EndEpoch(DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != 0 {
		t.Errorf("second epoch should be empty, got %v", next)
	}
}

func TestEndEpochDeterministicTies(t *testing.T) {
	l := newTestLogger(t, 8)
	for _, k := range []uint64{9, 3, 7, 1} {
		for j := 0; j < 12; j++ {
			if err := l.Log(key(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sel, err := l.EndEpoch(10)
	if err != nil {
		t.Fatal(err)
	}
	want := []block.Key{key(1), key(3), key(7), key(9)}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("tie order = %v", sel)
		}
	}
}

func TestLoggerClosedRejectsWrites(t *testing.T) {
	l := newTestLogger(t, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Log(key(1)); err == nil {
		t.Error("Log after Close should fail")
	}
	if err := l.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestSpillFilesOnDisk(t *testing.T) {
	dir := t.TempDir()
	l, err := NewLogger(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 100; i++ {
		if err := l.Log(key(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, "part-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Errorf("found %d spill files, want 3", len(matches))
	}
	// Partitioning should spread keys (not all in one file).
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, m := range matches {
		if fi, err := os.Stat(m); err == nil && fi.Size() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("only %d non-empty partitions; hash partitioning broken?", nonEmpty)
	}
}

func BenchmarkLogAndReduce(b *testing.B) {
	l, err := NewLogger(b.TempDir(), DefaultPartitions)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Log(key(uint64(i % 100000))); err != nil {
			b.Fatal(err)
		}
		// Periodic incremental reduction, as the paper prescribes.
		if i > 0 && i%1_000_000 == 0 {
			b.StopTimer()
			if err := l.Compact(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

func TestSelectKeepsLogsUntilReset(t *testing.T) {
	l := newTestLogger(t, 4)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			if err := l.Log(key(uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	keys, err := l.Select(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 {
		t.Fatalf("selected %d keys, want 5", len(keys))
	}
	// A failed transition retries Select: the logs must be intact.
	again, err := l.Select(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 5 {
		t.Fatalf("re-select after no Reset got %d keys, want 5", len(again))
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	empty, err := l.Select(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("select after Reset got %d keys, want 0", len(empty))
	}
}

func TestResetKeepsTuplesLoggedAfterSelect(t *testing.T) {
	l := newTestLogger(t, 4)
	for j := 0; j < 4; j++ {
		if err := l.Log(key(1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Select(2); err != nil {
		t.Fatal(err)
	}
	// Accesses logged while the epoch transition is in flight must carry
	// into the next epoch, not be wiped by Reset.
	for j := 0; j < 2; j++ {
		if err := l.Log(key(2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	got := map[block.Key]int64{}
	if err := l.Counts(func(k block.Key, c int64) { got[k] += c }); err != nil {
		t.Fatal(err)
	}
	if got[key(1)] != 0 {
		t.Fatalf("key 1 survived Reset with count %d, want 0", got[key(1)])
	}
	if got[key(2)] != 2 {
		t.Fatalf("key 2 after Reset has count %d, want 2", got[key(2)])
	}
}

func TestConcurrentLoggingDuringSelect(t *testing.T) {
	l := newTestLogger(t, 4)
	stop := make(chan struct{})
	done := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				done <- n
				return
			default:
			}
			if err := l.Log(key(uint64(n % 7))); err != nil {
				t.Error(err)
				done <- n
				return
			}
			n++
		}
	}()
	for i := 0; i < 20; i++ {
		if _, err := l.Select(1); err != nil {
			t.Fatal(err)
		}
		if err := l.Reset(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	logged := <-done
	// Every tuple logged must land either in a Select or survive into the
	// current logs — none lost, none double-counted.
	var remaining int64
	if err := l.Counts(func(_ block.Key, c int64) { remaining += c }); err != nil {
		t.Fatal(err)
	}
	if remaining > int64(logged) {
		t.Fatalf("logs hold %d accesses but only %d were logged", remaining, logged)
	}
}

// TestCompactConcurrentWithCounts: Compact rewrites (truncates) partition
// files in place, while Counts reads them without holding l.mu. The
// per-partition rewrite lock must keep a racing reduction from seeing a
// torn file — every read yields either the pre- or post-compaction
// contents, and the total count is conserved throughout.
func TestCompactConcurrentWithCounts(t *testing.T) {
	// One partition concentrates the contention. Few distinct keys logged
	// many times make the uncompacted file far larger than the 64 KiB read
	// buffer while compaction shrinks it to under a kilobyte: a reduction
	// takes many read syscalls, and a racing rewrite that truncates the
	// inode mid-read cuts off most of the tuples the reader had measured.
	l := newTestLogger(t, 1)
	const (
		keys    = 64
		repeats = 2000
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // compactor churns continuously
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := l.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for round := 1; round <= 10; round++ {
		for i := 0; i < repeats; i++ {
			for k := 0; k < keys; k++ {
				if err := l.Log(key(uint64(k))); err != nil {
					t.Fatal(err)
				}
			}
		}
		var total int64
		if err := l.Counts(func(_ block.Key, c int64) { total += c }); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if want := int64(round * keys * repeats); total != want {
			t.Fatalf("round %d: counts = %d, want %d (a concurrent compaction tore the read)", round, total, want)
		}
	}
	close(stop)
	wg.Wait()
}

func TestLogBatchMatchesIndividualLogs(t *testing.T) {
	mk := func(dir string) *Logger {
		l, err := NewLogger(dir, 8)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		return l
	}
	keys := make([]block.Key, 0, 100)
	for i := 0; i < 50; i++ {
		k := block.MakeKey(1, 2, uint64(i%13))
		keys = append(keys, k, k+1000)
	}
	one, batch := mk(t.TempDir()), mk(t.TempDir())
	for _, k := range keys {
		if err := one.Log(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.LogBatch(keys); err != nil {
		t.Fatal(err)
	}
	if a, b := one.TupleCount(), batch.TupleCount(); a != b {
		t.Fatalf("tuple counts differ: %d vs %d", a, b)
	}
	counts := func(l *Logger) map[block.Key]int64 {
		m := make(map[block.Key]int64)
		if err := l.Counts(func(k block.Key, c int64) { m[k] += c }); err != nil {
			t.Fatal(err)
		}
		return m
	}
	ca, cb := counts(one), counts(batch)
	if len(ca) != len(cb) {
		t.Fatalf("distinct keys differ: %d vs %d", len(ca), len(cb))
	}
	for k, v := range ca {
		if cb[k] != v {
			t.Errorf("key %v: batch count %d, want %d", k, cb[k], v)
		}
	}
}

func TestConcurrentLogBatchPartitions(t *testing.T) {
	l, err := NewLogger(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := make([]block.Key, 16)
			for i := 0; i < 100; i++ {
				for j := range keys {
					keys[j] = block.MakeKey(w, 0, uint64(i*16+j))
				}
				if err := l.LogBatch(keys); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := l.TupleCount(), int64(workers*100*16); got != want {
		t.Fatalf("TupleCount = %d, want %d", got, want)
	}
}
