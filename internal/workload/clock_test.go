package workload

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func testClock(t *testing.T, day int, burst float64) *dayClock {
	t.Helper()
	cfg := Default(8192)
	p := &cfg.Servers[0]
	p.BurstMinutes = burst
	rng := rand.New(rand.NewSource(5))
	return newDayClock(rng, &cfg, p, day)
}

func TestClockSamplesWithinDay(t *testing.T) {
	c := testClock(t, 3, 0)
	lo := int64(3) * trace.Day
	hi := lo + trace.Day
	for i := 0; i < 20000; i++ {
		ts := c.sample()
		if ts < lo || ts >= hi {
			t.Fatalf("sample %d outside day 3", ts)
		}
	}
}

func TestClockDay0Truncation(t *testing.T) {
	c := testClock(t, 0, 0)
	start := int64(17) * 3600 * 1e9
	for i := 0; i < 20000; i++ {
		if ts := c.sample(); ts < start {
			t.Fatalf("day-0 sample %d before trace start", ts)
		}
	}
	if c.thinP <= 0 || c.thinP >= 1 {
		t.Errorf("day-0 thinning probability = %v", c.thinP)
	}
	// Full days do not thin.
	if c1 := testClock(t, 1, 0); c1.thinP != 1 {
		t.Errorf("day-1 thinP = %v", c1.thinP)
	}
}

func TestClockDiurnalShape(t *testing.T) {
	c := testClock(t, 2, 0)
	// The usr profile peaks at hour 14: samples near the peak must be much
	// more frequent than at the antipode (hour 2).
	var peak, trough int
	for i := 0; i < 50000; i++ {
		h := int((c.sample() - int64(2)*trace.Day) / (3600 * 1e9))
		switch h {
		case 13, 14, 15:
			peak++
		case 1, 2, 3:
			trough++
		}
	}
	if peak < 2*trough {
		t.Errorf("diurnal shape weak: peak-hours %d vs trough-hours %d", peak, trough)
	}
}

func TestClockBurstConcentration(t *testing.T) {
	c := testClock(t, 2, 1.0) // expect one burst minute
	if len(c.bursts) == 0 {
		t.Skip("no burst drawn at this seed")
	}
	inBurst := 0
	const n = 50000
	for i := 0; i < n; i++ {
		m := trace.MinuteOf(c.sample()) - 2*24*60
		for _, b := range c.bursts {
			if m == b {
				inBurst++
				break
			}
		}
	}
	// A burst minute concentrates ~2% of the day's accesses — two orders
	// of magnitude above a fair minute's 1/1440.
	frac := float64(inBurst) / n
	if frac < 0.005 {
		t.Errorf("burst concentration %.4f too weak", frac)
	}
}

func TestClockSpacedMonotoneAndBounded(t *testing.T) {
	c := testClock(t, 1, 0)
	lo := int64(1) * trace.Day
	hi := lo + trace.Day
	for count := 2; count <= 10; count++ {
		prev := int64(-1)
		for i := 0; i < count; i++ {
			ts := c.spaced(0.5, i, count)
			if ts < lo || ts >= hi {
				t.Fatalf("spaced(%d/%d) = %d outside day", i, count, ts)
			}
			if ts <= prev-int64(trace.Minute)*30 {
				t.Fatalf("spaced times regressed badly: %d after %d", ts, prev)
			}
			prev = ts
		}
	}
	// Gaps must be hours apart for low counts (the anti-LRU property).
	a := c.spaced(0.2, 0, 3)
	b := c.spaced(0.2, 1, 3)
	if gap := b - a; gap < int64(trace.Minute)*60 {
		t.Errorf("gap %d ns too short for count-3 block", gap)
	}
}

func TestHotBoostDeterministicAndBounded(t *testing.T) {
	for s := 0; s < 13; s++ {
		for d := 0; d < 8; d++ {
			b1 := hotBoost(1, s, d)
			b2 := hotBoost(1, s, d)
			if b1 != b2 {
				t.Fatalf("hotBoost not deterministic at (%d,%d)", s, d)
			}
			if b1 < 1.0 || b1 > 2.2 {
				t.Fatalf("hotBoost(%d,%d) = %v out of range", s, d, b1)
			}
		}
	}
	if hotBoost(1, 0, 0) == hotBoost(2, 0, 0) {
		t.Error("seed does not influence boost")
	}
}
