package workload

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"testing"

	"repro/internal/block"
	"repro/internal/trace"
)

// testScale keeps unit tests fast while leaving enough blocks for the
// distributional checks to be meaningful.
const testScale = 8192

func testGen(t *testing.T, scale int) *Generator {
	t.Helper()
	g, err := New(Default(scale))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func countAccesses(t *testing.T, reqs []block.Request) map[block.Key]int {
	t.Helper()
	counts := make(map[block.Key]int)
	var accs []block.Access
	for i := range reqs {
		accs = trace.Expand(accs[:0], &reqs[i])
		for _, a := range accs {
			counts[a.Key]++
		}
	}
	return counts
}

func TestValidate(t *testing.T) {
	good := Default(1024)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero scale", func(c *Config) { c.Scale = 0 }},
		{"zero days", func(c *Config) { c.Days = 0 }},
		{"bad start hour", func(c *Config) { c.StartHour = 24 }},
		{"no servers", func(c *Config) { c.Servers = nil }},
		{"zero volumes", func(c *Config) { c.Servers[0].Volumes = 0 }},
		{"zero capacity", func(c *Config) { c.Servers[0].CapacityGB = 0 }},
		{"daily exceeds capacity", func(c *Config) { c.Servers[0].DailyGB = c.Servers[0].CapacityGB + 1 }},
		{"bad write fraction", func(c *Config) { c.Servers[0].WriteFraction = 1.5 }},
		{"bad drift", func(c *Config) { c.Servers[0].HotDrift = -0.1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Default(1024)
			c.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	g1 := testGen(t, testScale)
	g2 := testGen(t, testScale)
	d1, err := g1.Day(2)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := g2.Day(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(d2) {
		t.Fatalf("lengths differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, d1[i], d2[i])
		}
	}
	// Day must also be repeatable on the same generator.
	d1again, err := g1.Day(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1again) != len(d1) || d1again[0] != d1[0] {
		t.Error("Day not repeatable on one generator")
	}
}

func TestDayBoundsAndOrder(t *testing.T) {
	g := testGen(t, testScale)
	for _, d := range []int{0, 1, 7} {
		reqs, err := g.Day(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) == 0 {
			t.Fatalf("day %d empty", d)
		}
		lo := int64(d) * trace.Day
		hi := lo + trace.Day
		prev := int64(0)
		for _, r := range reqs {
			if r.Time < lo || r.Time >= hi {
				t.Fatalf("day %d: request time %d outside [%d,%d)", d, r.Time, lo, hi)
			}
			if r.Time < prev {
				t.Fatal("requests not time-sorted")
			}
			prev = r.Time
		}
	}
	if _, err := g.Day(-1); err == nil {
		t.Error("Day(-1) should fail")
	}
	if _, err := g.Day(8); err == nil {
		t.Error("Day(8) should fail")
	}
}

func TestDay0PartialAndSmaller(t *testing.T) {
	g := testGen(t, testScale)
	d0, err := g.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := g.Day(1)
	if err != nil {
		t.Fatal(err)
	}
	startNS := int64(17) * 3600 * 1e9
	for _, r := range d0 {
		if r.Time < startNS {
			t.Fatalf("day-0 request at %d ns precedes 17:00 start", r.Time)
		}
	}
	if len(d0) >= len(d1)/2 {
		t.Errorf("day 0 (%d requests) should be much smaller than day 1 (%d)", len(d0), len(d1))
	}
}

func TestO1PopularitySkew(t *testing.T) {
	g := testGen(t, testScale)
	reqs, err := g.Day(2)
	if err != nil {
		t.Fatal(err)
	}
	counts := countAccesses(t, reqs)
	total, once, le4, le10 := 0, 0, 0, 0
	all := make([]int, 0, len(counts))
	for _, c := range counts {
		total += c
		all = append(all, c)
		if c == 1 {
			once++
		}
		if c <= 4 {
			le4++
		}
		if c <= 10 {
			le10++
		}
	}
	n := len(all)
	if n < 10000 {
		t.Fatalf("too few unique blocks for a distribution check: %d", n)
	}
	// Top-1% share of accesses.
	sortDesc(all)
	top := all[:n/100]
	topSum := 0
	for _, c := range top {
		topSum += c
	}
	share := float64(topSum) / float64(total)
	if share < 0.12 || share > 0.62 {
		t.Errorf("top-1%% share = %.3f, want within paper range ~[0.14,0.53]", share)
	}
	if f := float64(once) / float64(n); f < 0.35 || f > 0.70 {
		t.Errorf("single-access fraction = %.3f, want ≈0.5", f)
	}
	if f := float64(le4) / float64(n); f < 0.90 {
		t.Errorf("≤4-access fraction = %.3f, want ≈0.97", f)
	}
	if f := float64(le10) / float64(n); f < 0.96 {
		t.Errorf("≤10-access fraction = %.3f, want ≈0.99", f)
	}
	// The hottest blocks must be orders of magnitude above the boundary.
	if all[0] < 100 {
		t.Errorf("hottest block count = %d, want ≫10", all[0])
	}
}

func sortDesc(a []int) {
	sort.Sort(sort.Reverse(sort.IntSlice(a)))
}

func TestO2ServerSkewVariation(t *testing.T) {
	g := testGen(t, testScale)
	reqs, err := g.Day(2)
	if err != nil {
		t.Fatal(err)
	}
	names := g.Names()
	prxyID, _ := names.Lookup("prxy")
	src1ID, _ := names.Lookup("src1")
	share := func(server int) float64 {
		counts := make(map[block.Key]int)
		var accs []block.Access
		total := 0
		for i := range reqs {
			if reqs[i].Server != server {
				continue
			}
			accs = trace.Expand(accs[:0], &reqs[i])
			for _, a := range accs {
				counts[a.Key]++
				total++
			}
		}
		all := make([]int, 0, len(counts))
		for _, c := range counts {
			all = append(all, c)
		}
		sortDesc(all)
		topSum := 0
		for _, c := range all[:max(1, len(all)/100)] {
			topSum += c
		}
		return float64(topSum) / float64(total)
	}
	prxy, src1 := share(prxyID), share(src1ID)
	if prxy < 1.7*src1 {
		t.Errorf("prxy top-1%% share (%.3f) should dwarf src1's (%.3f)", prxy, src1)
	}
	if prxy < 0.18 {
		t.Errorf("prxy top-1%% share = %.3f, want strong skew", prxy)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestO2HotSetDrift(t *testing.T) {
	g := testGen(t, testScale)
	// Compare precomputed hot sets for the usr server between days 2 and 3:
	// substantial overlap, but not identical (O2).
	usr := g.servers[0]
	for _, vs := range usr.volumes {
		h2 := vs.days[2].hot
		h3 := vs.days[3].hot
		in2 := make(map[uint32]bool, len(h2))
		for _, c := range h2 {
			in2[c] = true
		}
		overlap := 0
		for _, c := range h3 {
			if in2[c] {
				overlap++
			}
		}
		f := float64(overlap) / float64(len(h3))
		if f < 0.25 || f > 0.95 {
			t.Errorf("usr hot-set overlap day2→3 = %.2f, want meaningful-but-partial", f)
		}
	}
}

func TestRequestsWithinVolumeCapacity(t *testing.T) {
	g := testGen(t, testScale)
	reqs, err := g.Day(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		s := g.servers[r.Server]
		vs := s.volumes[r.Volume]
		if r.End() > vs.chunks*ChunkBytes {
			t.Fatalf("request %+v exceeds volume capacity %d bytes", r, vs.chunks*ChunkBytes)
		}
	}
}

func TestReadWriteMix(t *testing.T) {
	g := testGen(t, testScale)
	reqs, err := g.Day(1)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	for _, r := range reqs {
		if r.Kind == block.Write {
			writes++
		}
	}
	f := float64(writes) / float64(len(reqs))
	if f < 0.15 || f > 0.40 {
		t.Errorf("write fraction = %.3f, want ≈0.25 (3:1 read:write)", f)
	}
}

func TestReaderStreamsWholeTrace(t *testing.T) {
	cfg := Default(65536)
	cfg.Days = 3
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for d := 0; d < cfg.Days; d++ {
		reqs, err := g.Day(d)
		if err != nil {
			t.Fatal(err)
		}
		want += len(reqs)
	}
	r := g.Reader()
	got := 0
	prevDay := 0
	for {
		req, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if d := trace.DayOf(req.Time); d < prevDay {
			t.Fatal("reader went backwards across days")
		} else {
			prevDay = d
		}
		got++
	}
	if got != want {
		t.Errorf("reader yielded %d requests, want %d", got, want)
	}
}

func TestNamesMatchRoster(t *testing.T) {
	g := testGen(t, 65536)
	names := g.Names()
	if names.Len() != 13 {
		t.Fatalf("got %d names", names.Len())
	}
	if names.Name(0) != "usr" || names.Name(12) != "wdev" {
		t.Errorf("roster order wrong: %v", names.Names())
	}
}

func TestScaleGuard(t *testing.T) {
	// An absurd scale must be rejected, not silently produce degenerate
	// volumes.
	cfg := Default(1 << 24)
	if _, err := New(cfg); err == nil {
		t.Error("want error for over-scaled config")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/ensemble.json"
	cfg := Default(8192)
	if err := SaveConfig(cfg, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Scale != cfg.Scale || loaded.Days != cfg.Days || len(loaded.Servers) != len(cfg.Servers) {
		t.Fatalf("round trip lost fields: %+v", loaded)
	}
	if loaded.Servers[5].Name != "prxy" || loaded.Servers[5].Theta != cfg.Servers[5].Theta {
		t.Errorf("server fields lost: %+v", loaded.Servers[5])
	}
	// The loaded config must generate the identical trace.
	g1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(loaded)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := g1.Day(1)
	d2, _ := g2.Day(1)
	if len(d1) != len(d2) || d1[0] != d2[0] || d1[len(d1)-1] != d2[len(d2)-1] {
		t.Error("loaded config generates a different trace")
	}
}

func TestLoadConfigValidates(t *testing.T) {
	dir := t.TempDir()
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte(`{"Scale":0,"Days":8}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Error("invalid config accepted")
	}
	if err := os.WriteFile(bad, []byte(`not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadConfig(dir + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestEncodeConfig(t *testing.T) {
	data, err := EncodeConfig(Default(512))
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Error("EncodeConfig produced invalid JSON")
	}
}
