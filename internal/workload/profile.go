// Package workload synthesizes block-access traces whose statistics match
// the MSR-Cambridge storage-ensemble traces the paper analyzes (§2):
//
//   - O1 (popularity skew): each day, roughly the top 1% of accessed blocks
//     carry a large share of accesses (14–53% across days); ~99% of blocks
//     see ≤10 accesses, ~97% see ≤4, and about half of all accessed blocks
//     are touched exactly once.
//   - O2 (skew variation): the hot-block set drifts from day to day with
//     substantial successive-day overlap, and skew varies across servers
//     (Prxy extreme, Src1 near-linear), across volumes of one server, and
//     across days for one server.
//
// The generator is deterministic for a given Config (seeded math/rand) and
// fully scale-parameterized: Scale divides footprints and access counts so
// the same distributions can be produced at laptop scale while preserving
// the capacity ratios (cache : daily top-1% : daily footprint) that the
// paper's results depend on.
package workload

import "fmt"

// ChunkBytes is the popularity granularity: blocks are grouped into 4 KiB
// chunks (8 accounting blocks) that are accessed together, matching typical
// page-sized I/O in the traces.
const ChunkBytes = 4096

// DefaultScale is the scale divisor used by the experiment harness: 1/512
// of the paper's trace volume. Unit tests use coarser scales.
const DefaultScale = 512

// ServerProfile describes one server of the ensemble.
type ServerProfile struct {
	// Name is the MSR-style server key ("usr", "prxy", ...).
	Name string
	// Volumes is the number of storage volumes (Table 1).
	Volumes int
	// CapacityGB is the total provisioned capacity in GB (Table 1),
	// before scaling.
	CapacityGB float64
	// DailyGB is the average unique data touched per day in GB, before
	// scaling. Ensemble total ≈ 685 GB/day, range 335–1190 (paper §2).
	DailyGB float64
	// Theta is the Zipf-like exponent of the server's hot-set popularity.
	// Higher values concentrate more accesses on fewer blocks. Prxy ≈ 1.5
	// (extreme skew), Src1 ≈ 0.3 (near-linear cumulative curve).
	Theta float64
	// ThetaByDay optionally overrides Theta per calendar day (index = day).
	// Used for servers such as Stg whose skew varies strongly in time
	// (Fig 3(c)). Zero entries fall back to Theta.
	ThetaByDay []float64
	// VolumeSkew scales Theta per volume (Fig 3(b): Web volume 0 is much
	// more skewed than volume 1). Missing entries default to 1.
	VolumeSkew []float64
	// WriteFraction is the probability that an access is a write.
	WriteFraction float64
	// HotDrift is the fraction of the hot set replaced each day (O2).
	HotDrift float64
	// DayMult scales DailyGB per calendar day; missing entries default
	// to 1. Drives the day-to-day variation of each server's contribution
	// to the ensemble top-1% (Fig 3(d)).
	DayMult []float64
	// PeakHour is the center of the server's diurnal load peak (0–23).
	PeakHour float64
	// BurstMinutes is the expected number of high-intensity minutes per
	// day (correlated bursts are rare in the ensemble; §5.2).
	BurstMinutes float64
}

// Config describes a whole synthetic ensemble trace.
type Config struct {
	// Scale divides all footprints and access counts. Must be ≥ 1.
	Scale int
	// Days is the number of calendar days (the paper uses 8, with day 0
	// partial).
	Days int
	// Seed makes the trace deterministic.
	Seed int64
	// StartHour is the hour of day 0 at which tracing starts (the paper's
	// collection began at 5:00 pm, so day 0 covers only 7 hours).
	StartHour int
	// Servers is the ensemble roster.
	Servers []ServerProfile
}

// Validate checks configuration invariants.
func (c *Config) Validate() error {
	if c.Scale < 1 {
		return fmt.Errorf("workload: Scale must be ≥1, got %d", c.Scale)
	}
	if c.Days < 1 {
		return fmt.Errorf("workload: Days must be ≥1, got %d", c.Days)
	}
	if c.StartHour < 0 || c.StartHour > 23 {
		return fmt.Errorf("workload: StartHour must be in [0,23], got %d", c.StartHour)
	}
	if len(c.Servers) == 0 {
		return fmt.Errorf("workload: no servers configured")
	}
	for i, s := range c.Servers {
		if s.Volumes < 1 {
			return fmt.Errorf("workload: server %d (%s): Volumes must be ≥1", i, s.Name)
		}
		if s.CapacityGB <= 0 || s.DailyGB <= 0 {
			return fmt.Errorf("workload: server %d (%s): capacities must be positive", i, s.Name)
		}
		if s.DailyGB > s.CapacityGB {
			return fmt.Errorf("workload: server %d (%s): DailyGB %.1f exceeds CapacityGB %.1f",
				i, s.Name, s.DailyGB, s.CapacityGB)
		}
		if s.WriteFraction < 0 || s.WriteFraction > 1 {
			return fmt.Errorf("workload: server %d (%s): WriteFraction out of range", i, s.Name)
		}
		if s.HotDrift < 0 || s.HotDrift > 1 {
			return fmt.Errorf("workload: server %d (%s): HotDrift out of range", i, s.Name)
		}
	}
	return nil
}

// ServerNames returns the roster names in ID order.
func (c *Config) ServerNames() []string {
	names := make([]string, len(c.Servers))
	for i, s := range c.Servers {
		names[i] = s.Name
	}
	return names
}

// Default returns the 13-server ensemble of the paper's Table 1 with
// per-server popularity parameters tuned to reproduce the published
// observations, at the given scale.
//
// Capacity and volume counts are Table 1 verbatim; the per-server daily
// footprints are chosen to sum to the upper-middle of the paper's daily
// range (≈890 GB/day of the reported 335–1190 GB/day) with plausible per-server splits, since the paper does not
// publish per-server access volumes.
func Default(scale int) Config {
	return Config{
		Scale:     scale,
		Days:      8,
		Seed:      1,
		StartHour: 17,
		Servers: []ServerProfile{
			{Name: "usr", Volumes: 3, CapacityGB: 1367, DailyGB: 156, Theta: 0.75,
				WriteFraction: 0.22, HotDrift: 0.10, PeakHour: 14, BurstMinutes: 0.4,
				DayMult: []float64{1, 1.3, 0.8, 1.1, 0.9, 1.2, 0.6, 0.7}},
			{Name: "proj", Volumes: 5, CapacityGB: 2094, DailyGB: 208, Theta: 0.70,
				WriteFraction: 0.20, HotDrift: 0.12, PeakHour: 11, BurstMinutes: 0.3,
				DayMult: []float64{1, 0.8, 1.4, 1.0, 1.2, 0.7, 0.5, 1.1}},
			{Name: "prn", Volumes: 2, CapacityGB: 452, DailyGB: 39, Theta: 0.65,
				WriteFraction: 0.55, HotDrift: 0.15, PeakHour: 15, BurstMinutes: 0.2},
			{Name: "hm", Volumes: 2, CapacityGB: 39, DailyGB: 6, Theta: 0.70,
				WriteFraction: 0.45, HotDrift: 0.05, PeakHour: 3, BurstMinutes: 0.1},
			{Name: "rsrch", Volumes: 3, CapacityGB: 277, DailyGB: 26, Theta: 0.70,
				WriteFraction: 0.35, HotDrift: 0.10, PeakHour: 16, BurstMinutes: 0.1},
			{Name: "prxy", Volumes: 2, CapacityGB: 89, DailyGB: 78, Theta: 1.05,
				WriteFraction: 0.30, HotDrift: 0.05, PeakHour: 13, BurstMinutes: 0.6,
				DayMult: []float64{1, 1.2, 1.1, 0.9, 1.0, 1.3, 0.8, 0.9}},
			{Name: "src1", Volumes: 3, CapacityGB: 555, DailyGB: 182, Theta: 0.20,
				WriteFraction: 0.25, HotDrift: 0.30, PeakHour: 10, BurstMinutes: 0.5,
				DayMult: []float64{1, 0.9, 1.2, 1.4, 0.7, 1.0, 0.4, 0.6}},
			{Name: "src2", Volumes: 3, CapacityGB: 355, DailyGB: 58, Theta: 0.65,
				WriteFraction: 0.25, HotDrift: 0.15, PeakHour: 10, BurstMinutes: 0.2},
			{Name: "stg", Volumes: 2, CapacityGB: 113, DailyGB: 19, Theta: 0.75,
				ThetaByDay:    []float64{0.75, 0.7, 0.6, 0.35, 0.75, 1.1, 0.85, 0.7},
				WriteFraction: 0.30, HotDrift: 0.12, PeakHour: 12, BurstMinutes: 0.2},
			{Name: "ts", Volumes: 1, CapacityGB: 22, DailyGB: 3, Theta: 0.70,
				WriteFraction: 0.30, HotDrift: 0.08, PeakHour: 9, BurstMinutes: 0.1},
			{Name: "web", Volumes: 4, CapacityGB: 441, DailyGB: 52, Theta: 0.90,
				VolumeSkew:    []float64{1.0, 0.45, 0.8, 0.7},
				WriteFraction: 0.25, HotDrift: 0.08, PeakHour: 13, BurstMinutes: 0.4,
				DayMult: []float64{1, 1.1, 0.9, 1.2, 1.0, 0.8, 1.1, 1.3}},
			{Name: "mds", Volumes: 2, CapacityGB: 509, DailyGB: 32, Theta: 0.75,
				WriteFraction: 0.15, HotDrift: 0.06, PeakHour: 20, BurstMinutes: 0.3},
			{Name: "wdev", Volumes: 4, CapacityGB: 136, DailyGB: 28, Theta: 0.65,
				WriteFraction: 0.50, HotDrift: 0.15, PeakHour: 11, BurstMinutes: 0.2},
		},
	}
}
