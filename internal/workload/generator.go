package workload

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/block"
	"repro/internal/trace"
)

// Generator produces the synthetic ensemble trace day by day. It is
// deterministic for a given Config: the per-day hot sets, cold-block
// schedules and event randomness are all derived from Config.Seed.
//
// Construction precomputes the popularity *structure* for every day (which
// chunks are hot, which fresh chunks each day touches); Day then
// materializes the request stream for one calendar day on demand.
type Generator struct {
	cfg     Config
	names   *trace.NameTable
	servers []*serverState
}

// serverState holds one server's precomputed popularity structure.
type serverState struct {
	profile *ServerProfile
	id      int
	volumes []*volumeState
}

// volumeState holds one volume's structure. Chunk numbers are volume-local.
type volumeState struct {
	chunks uint64 // capacity of the volume in 4 KiB chunks (scaled)
	// days[d] describes day d's accessed set.
	days []volumeDay
}

// volumeDay is the precomputed accessed-set structure of one volume-day.
type volumeDay struct {
	hot   []uint32 // hot chunks in descending popularity rank order
	cold  []uint32 // cold (low-reuse) chunks touched this day
	theta float64  // effective skew exponent for the day
}

// The cold-block access-count distribution: coldCountWeights[i] is the
// probability that a cold chunk is accessed exactly i+1 times in its day.
// Tuned so that, with the top ~1% hot set layered on top, the ensemble
// reproduces O1: ~half of accessed blocks touched once, ~97% ≤4 accesses,
// ~99% ≤10.
var coldCountWeights = [10]float64{0.55, 0.27, 0.10, 0.04, 0.015, 0.009, 0.006, 0.004, 0.003, 0.003}

var coldCountCDF = func() [10]float64 {
	var cdf [10]float64
	sum := 0.0
	for i, w := range coldCountWeights {
		sum += w
		cdf[i] = sum
	}
	cdf[9] = 1.0 // guard against rounding
	return cdf
}()

// hotBoundaryCount is the access count at the top-1% popularity boundary:
// the paper observes the top 1st-percentile bin averaging ~10 accesses/day.
const hotBoundaryCount = 10

// maxHotCount caps the hottest chunk's daily count. (The paper's top
// 0.01%-ile bin averages >1000 accesses per 512 B block; we cap lower
// because at reproduction scale an uncapped power-law top concentrates
// mass in blocks every policy caches, washing out the sieved-vs-unsieved
// contrast the paper reports.)
const maxHotCount = 800

// hotFraction is the fraction of a day's accessed chunks that form the hot
// set (O1's "top 1%").
const hotFraction = 0.01

// subChunkProb is the probability that an access is issued as a sub-4KiB
// request (the paper notes ~6% of accesses are not 4 KiB aligned).
const subChunkProb = 0.06

// seqRunProb is the probability that a cold single-access chunk is read as
// part of a short disk-sequential multi-chunk request.
const seqRunProb = 0.03

// New validates cfg and precomputes the trace structure.
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Servers) > block.MaxServers {
		return nil, fmt.Errorf("workload: %d servers exceed block.MaxServers", len(cfg.Servers))
	}
	g := &Generator{cfg: cfg, names: trace.NewNameTable(cfg.ServerNames()...)}
	structRNG := rand.New(rand.NewSource(cfg.Seed))
	for i := range cfg.Servers {
		p := &cfg.Servers[i]
		if p.Volumes > block.MaxVolumes {
			return nil, fmt.Errorf("workload: server %s: %d volumes exceed block.MaxVolumes", p.Name, p.Volumes)
		}
		ss := &serverState{profile: p, id: i}
		if err := ss.build(&cfg, structRNG); err != nil {
			return nil, err
		}
		g.servers = append(g.servers, ss)
	}
	return g, nil
}

// Names returns the server name table for the generated trace.
func (g *Generator) Names() *trace.NameTable { return g.names }

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Days returns the number of calendar days in the trace (it satisfies the
// simulator's Trace interface together with Day).
func (g *Generator) Days() int { return g.cfg.Days }

// build precomputes the volume structures for all days of one server.
func (s *serverState) build(cfg *Config, rng *rand.Rand) error {
	p := s.profile
	capChunks := scaleChunks(p.CapacityGB, cfg.Scale)
	dailyChunks := scaleChunks(p.DailyGB, cfg.Scale)
	perVolCap := capChunks / uint64(p.Volumes)
	if perVolCap < 32 {
		return fmt.Errorf("workload: server %s: scale %d leaves volumes with only %d chunks",
			p.Name, cfg.Scale, perVolCap)
	}
	perVolDaily := dailyChunks / uint64(p.Volumes)
	if perVolDaily < 8 {
		perVolDaily = 8
	}
	for v := 0; v < p.Volumes; v++ {
		vs := &volumeState{chunks: perVolCap}
		// A shuffled permutation of the volume's chunks provides the
		// fresh-block schedule: each day consumes the next run of the
		// permutation, guaranteeing distinct blocks within a day and
		// mostly-fresh blocks across days (reshuffled on wrap).
		perm := rng.Perm(int(perVolCap))
		cursor := 0
		take := func(n int) []uint32 {
			out := make([]uint32, 0, n)
			for len(out) < n {
				if cursor >= len(perm) {
					perm = rng.Perm(int(perVolCap))
					cursor = 0
				}
				out = append(out, uint32(perm[cursor]))
				cursor++
			}
			return out
		}
		var hot []uint32
		for d := 0; d < cfg.Days; d++ {
			mult := dayMult(p, d)
			unique := int(math.Max(8, float64(perVolDaily)*mult))
			hotSize := int(math.Max(2, math.Round(hotFraction*float64(unique))))
			switch {
			case hot == nil:
				hot = take(hotSize)
			default:
				hot = driftHot(hot, hotSize, p.HotDrift, take, rng)
			}
			day := volumeDay{
				hot:   append([]uint32(nil), hot...),
				cold:  take(unique - hotSize),
				theta: effectiveTheta(p, v, d),
			}
			vs.days = append(vs.days, day)
		}
		s.volumes = append(s.volumes, vs)
	}
	return nil
}

// scaleChunks converts an unscaled capacity in GB to a scaled chunk count.
func scaleChunks(gb float64, scale int) uint64 {
	chunks := gb * (1 << 30) / ChunkBytes / float64(scale)
	if chunks < 1 {
		return 1
	}
	return uint64(chunks)
}

func dayMult(p *ServerProfile, d int) float64 {
	if d < len(p.DayMult) && p.DayMult[d] > 0 {
		return p.DayMult[d]
	}
	return 1
}

func effectiveTheta(p *ServerProfile, volume, day int) float64 {
	theta := p.Theta
	if day < len(p.ThetaByDay) && p.ThetaByDay[day] > 0 {
		theta = p.ThetaByDay[day]
	}
	if volume < len(p.VolumeSkew) && p.VolumeSkew[volume] > 0 {
		theta *= p.VolumeSkew[volume]
	}
	return theta
}

// driftHot evolves a hot set: it keeps a (1-drift) fraction of the previous
// day's hot chunks (preserving rank order, so yesterday's hottest blocks
// stay hottest — the paper notes significant overlap between successive
// days) and fills the remainder, plus any size change, with fresh chunks.
func driftHot(prev []uint32, size int, drift float64, take func(int) []uint32, rng *rand.Rand) []uint32 {
	keep := int(math.Round(float64(len(prev)) * (1 - drift)))
	if keep > size {
		keep = size
	}
	// Keep a random subset but preserve relative order.
	kept := make([]uint32, 0, size)
	if keep > 0 {
		idx := rng.Perm(len(prev))[:keep]
		used := make(map[int]bool, keep)
		for _, i := range idx {
			used[i] = true
		}
		for i, c := range prev {
			if used[i] {
				kept = append(kept, c)
			}
		}
	}
	fresh := take(size - len(kept))
	// Interleave fresh chunks through the ranks so new entrants can become
	// hot, not only tail-warm.
	out := make([]uint32, 0, size)
	fi, ki := 0, 0
	for len(out) < size {
		if fi < len(fresh) && (ki >= len(kept) || rng.Float64() < float64(len(fresh))/float64(size)) {
			out = append(out, fresh[fi])
			fi++
		} else if ki < len(kept) {
			out = append(out, kept[ki])
			ki++
		}
	}
	return out
}

// hotCount returns the daily access count of the hot chunk at 0-based rank
// r within a hot set of size h and skew theta. Counts follow a truncated
// power law anchored so the coldest hot chunk sits at the paper's observed
// top-1% boundary (~10 accesses/day).
func hotCount(r, h int, theta float64) int {
	c := hotBoundaryCount * math.Pow(float64(h)/float64(r+1), theta)
	if c > maxHotCount {
		c = maxHotCount
	}
	if c < hotBoundaryCount {
		c = hotBoundaryCount
	}
	return int(math.Round(c))
}

// hotBoost returns a deterministic per-server-per-day multiplier on hot
// access counts, in roughly [0.6, 2.2]. Together with the per-server skew
// differences this produces the paper's wide day-to-day swing in the
// fraction of accesses the ensemble top-1% captures (14%–53%).
func hotBoost(seed int64, server, day int) float64 {
	r := rand.New(rand.NewSource(seed*7_368_787 + int64(server)*31 + int64(day)*1009))
	return 1.1 + 1.0*r.Float64()
}

// coldCount samples a cold chunk's daily access count (1..10).
func coldCount(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range coldCountCDF {
		if u <= c {
			return i + 1
		}
	}
	return len(coldCountCDF)
}

// Day materializes the request stream for calendar day d, sorted by issue
// time. Day 0 is partial: only accesses after Config.StartHour survive
// (binomial thinning of the per-chunk counts), reproducing the paper's
// outlier first day.
func (g *Generator) Day(d int) ([]block.Request, error) {
	if d < 0 || d >= g.cfg.Days {
		return nil, fmt.Errorf("workload: day %d out of range [0,%d)", d, g.cfg.Days)
	}
	var reqs []block.Request
	for _, s := range g.servers {
		reqs = s.emitDay(&g.cfg, d, reqs)
	}
	trace.SortByTime(reqs)
	return reqs, nil
}

// Reader returns a streaming Reader over the full trace (all days in
// order). Each day is materialized lazily.
func (g *Generator) Reader() trace.Reader {
	return &genReader{g: g}
}

type genReader struct {
	g   *Generator
	day int
	cur []block.Request
	pos int
	err error
}

func (r *genReader) Next() (block.Request, error) {
	if r.err != nil {
		return block.Request{}, r.err
	}
	for r.pos >= len(r.cur) {
		if r.day >= r.g.cfg.Days {
			r.err = io.EOF
			return block.Request{}, r.err
		}
		reqs, err := r.g.Day(r.day)
		if err != nil {
			r.err = err
			return block.Request{}, err
		}
		r.day++
		r.cur, r.pos = reqs, 0
	}
	req := r.cur[r.pos]
	r.pos++
	return req, nil
}

// emitDay appends one server's requests for day d.
func (s *serverState) emitDay(cfg *Config, d int, reqs []block.Request) []block.Request {
	p := s.profile
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(s.id)*4099 + int64(d)))
	clock := newDayClock(rng, cfg, p, d)
	for v, vs := range s.volumes {
		day := &vs.days[d]
		emit := func(chunk uint32, count int, cold bool) {
			reqs = s.emitChunk(rng, clock, d, v, vs, chunk, count, cold, reqs)
		}
		boost := hotBoost(cfg.Seed, s.id, d)
		for r, chunk := range day.hot {
			c := int(math.Round(float64(hotCount(r, len(day.hot), day.theta)) * boost))
			emit(chunk, thin(rng, c, clock.thinP), false)
		}
		for _, chunk := range day.cold {
			emit(chunk, thin(rng, coldCount(rng), clock.thinP), true)
		}
	}
	return reqs
}

// thin applies day-0 binomial thinning: each access independently survives
// with probability p.
func thin(rng *rand.Rand, count int, p float64) int {
	if p >= 1 {
		return count
	}
	kept := 0
	for i := 0; i < count; i++ {
		if rng.Float64() < p {
			kept++
		}
	}
	return kept
}

// emitChunk emits `count` accesses to one chunk.
func (s *serverState) emitChunk(rng *rand.Rand, clock *dayClock, d, v int, vs *volumeState,
	chunk uint32, count int, cold bool, reqs []block.Request) []block.Request {
	if count <= 0 {
		return reqs
	}
	p := s.profile
	base := uint64(chunk) * ChunkBytes
	// Cold reuse is evenly spaced across the day (gaps of hours — the
	// buffer caches upstream absorbed anything shorter, O1); hot blocks are
	// sampled from the diurnal profile throughout the day.
	phase := rng.Float64()
	for i := 0; i < count; i++ {
		var t int64
		if cold && count > 1 {
			t = clock.spaced(phase, i, count)
		} else {
			t = clock.sample()
		}
		kind := block.Read
		if rng.Float64() < p.WriteFraction {
			kind = block.Write
		}
		offset, length := base, uint32(ChunkBytes)
		switch {
		case cold && count == 1 && kind == block.Read && rng.Float64() < seqRunProb:
			// Disk-sequential scan: read this chunk plus a few neighbours.
			run := uint64(2 + rng.Intn(7))
			if max := vs.chunks - uint64(chunk); run > max {
				run = max
			}
			length = uint32(run * ChunkBytes)
		case rng.Float64() < subChunkProb:
			// Sub-page request, possibly unaligned within the chunk.
			nblk := 1 + rng.Intn(4)
			length = uint32(nblk * block.Size)
			offset = base + uint64(rng.Intn(block.BlocksPerPage-nblk+1))*block.Size
		}
		reqs = append(reqs, block.Request{
			Time:     t,
			Duration: serviceTime(rng),
			Server:   s.id,
			Volume:   v,
			Kind:     kind,
			Offset:   offset,
			Length:   length,
		})
	}
	return reqs
}

// serviceTime samples a plausible HDD service time (the trace's
// ResponseTime column): ~2–60 ms.
func serviceTime(rng *rand.Rand) int64 {
	ms := 2 + rng.ExpFloat64()*6
	if ms > 60 {
		ms = 60
	}
	return int64(ms * 1e6)
}
