package workload

import (
	"math"
	"math/rand"

	"repro/internal/trace"
)

// dayClock samples access timestamps within one calendar day for one
// server: a diurnal intensity profile with the server's peak hour, rare
// short high-intensity bursts, and (on day 0) truncation to the hours after
// trace collection started.
type dayClock struct {
	rng   *rand.Rand
	base  int64 // nanoseconds at the start of the day
	cdf   [24]float64
	first int // first active hour (0 except on day 0)
	// thinP is the day-0 thinning probability applied to per-chunk access
	// counts (1.0 on full days).
	thinP float64
	// bursts are minute indices within the day receiving concentrated
	// extra load; burstP is the probability an access lands in one.
	bursts []int
	burstP float64
}

// diurnalAmplitude shapes the day/night load swing.
const diurnalAmplitude = 0.65

// burstShare is the fraction of a bursty server-day's accesses packed into
// each burst minute. One burst minute then carries roughly
// burstShare/(1/1440) ≈ 29× the average per-minute load, which is what
// makes the rare multi-drive minutes of Fig 8/9 appear.
const burstShare = 0.02

func newDayClock(rng *rand.Rand, cfg *Config, p *ServerProfile, day int) *dayClock {
	c := &dayClock{rng: rng, base: int64(day) * trace.Day, thinP: 1}
	if day == 0 {
		c.first = cfg.StartHour
		c.thinP = float64(24-cfg.StartHour) / 24
	}
	// Hourly intensity: 1 + A·cos of the distance from the peak hour.
	sum := 0.0
	for h := 0; h < 24; h++ {
		w := 0.0
		if h >= c.first {
			w = 1 + diurnalAmplitude*math.Cos(2*math.Pi*(float64(h)-p.PeakHour)/24)
		}
		sum += w
		c.cdf[h] = sum
	}
	for h := range c.cdf {
		c.cdf[h] /= sum
	}
	// Bursts: BurstMinutes is the expected count; sample a small integer.
	n := 0
	for f := p.BurstMinutes; f > 0; f-- {
		if f >= 1 || rng.Float64() < f {
			n++
		}
	}
	for i := 0; i < n; i++ {
		// Place bursts in active hours, biased by the same diurnal CDF.
		h := c.sampleHour()
		c.bursts = append(c.bursts, h*60+rng.Intn(60))
	}
	c.burstP = burstShare * float64(len(c.bursts))
	return c
}

func (c *dayClock) sampleHour() int {
	u := c.rng.Float64()
	for h, v := range c.cdf {
		if u <= v {
			return h
		}
	}
	return 23
}

// sample returns a timestamp within the day following the diurnal profile,
// possibly redirected into a burst minute.
func (c *dayClock) sample() int64 {
	if len(c.bursts) > 0 && c.rng.Float64() < c.burstP {
		m := c.bursts[c.rng.Intn(len(c.bursts))]
		return c.base + int64(m)*trace.Minute + int64(c.rng.Float64()*float64(trace.Minute))
	}
	h := c.sampleHour()
	return c.base + int64(h)*int64(3600)*1e9 + int64(c.rng.Float64()*3600e9)
}

// spaced returns the i-th of n evenly spaced timestamps across the day's
// active window, offset by a per-block phase and lightly jittered. Cold
// blocks' few reuses reach the block layer this way — the servers'
// in-memory buffer caches absorb short-gap reuse (O1), so the residual
// inter-access gaps (hours) are far beyond what an LRU disk cache of
// SieveStore's size can hold onto.
func (c *dayClock) spaced(phase float64, i, n int) int64 {
	lo := c.base + int64(c.first)*3600*1e9
	span := c.base + trace.Day - lo
	stride := span / int64(n)
	jitter := int64((c.rng.Float64() - 0.5) * 0.3 * float64(stride))
	t := lo + int64(phase*float64(stride)) + int64(i)*stride + jitter
	if t < lo {
		t = lo
	}
	if hi := c.base + trace.Day - 1; t > hi {
		t = hi
	}
	return t
}
