package workload

import (
	"encoding/json"
	"fmt"
	"os"
)

// JSON configuration support: operators tune the synthetic ensemble (or
// describe their own) in a config file instead of editing Go code.
//
//	tracegen -dump-config > ensemble.json   # start from the Table 1 roster
//	$EDITOR ensemble.json
//	tracegen -config ensemble.json -out trace.csv

// MarshalJSON-friendly: Config and ServerProfile are plain structs, so the
// default encoding works; these helpers add file handling and validation.

// SaveConfig writes cfg as indented JSON to path.
func SaveConfig(cfg Config, path string) error {
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadConfig reads and validates a JSON ensemble configuration.
func LoadConfig(path string) (Config, error) {
	var cfg Config
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, fmt.Errorf("workload: %w", err)
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		return cfg, fmt.Errorf("workload: parsing %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("workload: %s: %w", path, err)
	}
	return cfg, nil
}

// EncodeConfig renders cfg as indented JSON (for -dump-config).
func EncodeConfig(cfg Config) ([]byte, error) {
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return append(data, '\n'), nil
}
