// Package tenant implements multi-tenant QoS accounting for the
// SieveStore cache: per-tenant capacity quotas with demand-driven
// repartitioning, admission sieve-threshold penalties, and an SSD
// write-endurance budget.
//
// A tenant is the (server, volume) pair every wire request already
// carries — the natural isolation unit of the ensemble (ECI-Cache's
// per-VM partitions, one level down). The Accountant tracks, per
// tenant: block accesses and realized hits, cache occupancy, and
// allocation-writes (the SSD wear the sieve's admissions cause). On
// top of the accounting sit two QoS mechanisms:
//
//   - Soft capacity quotas. Each tenant holds a quota in blocks;
//     admission is denied while the tenant is at or over it (its
//     resident set can only be displaced by global eviction pressure,
//     never grown). Quotas repartition periodically — and, under
//     SieveStore-D, at every epoch boundary — by realized reuse: each
//     tenant's share of the interval's hits earns it the matching share
//     of capacity above a small guaranteed floor. Hits, not raw
//     accesses, are the demand signal on purpose: a scanning or
//     churning tenant generates plenty of accesses but almost no reuse
//     of its resident set, so it donates capacity to tenants whose
//     blocks actually get re-read.
//
//   - An endurance budget. Allocation-writes drain a per-tenant token
//     bucket whose refill rate is the tenant's share of the configured
//     drive-endurance envelope (bytes/day). A tenant running low is
//     soft-throttled first (its sieve threshold is raised by
//     ThrottlePenalty, so only hotter blocks admit); an empty bucket
//     hard-denies admission until the envelope refills. Either way the
//     sieve keeps counting the tenant's misses, so admission resumes
//     instantly once the budget allows.
//
// Concurrency: the Accountant is a leaf in the store's lock order. All
// hot counters are atomics; the tenant map is guarded by an RWMutex
// taken only on first sight of a tenant and during repartitioning; each
// tenant's token bucket has its own small mutex. No Accountant method
// calls back into the store, so it is safe to call under a shard lock.
package tenant

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
)

// ID identifies a tenant: the wire protocol's (server, volume) pair
// packed as server<<6 | volume — exactly bits 52..63 of a block.Key.
type ID uint16

// MakeID packs a (server, volume) pair. Callers are expected to pass
// values already validated by block.MakeKey's range checks.
func MakeID(server, volume int) ID {
	return ID(server)<<6 | ID(volume)&63
}

// IDOf extracts the owning tenant of a block key.
func IDOf(key block.Key) ID { return ID(uint64(key) >> 52) }

// Server returns the tenant's server index.
func (id ID) Server() int { return int(id >> 6) }

// Volume returns the tenant's volume index.
func (id ID) Volume() int { return int(id & 63) }

// String renders "server/volume".
func (id ID) String() string { return fmt.Sprintf("%d/%d", id.Server(), id.Volume()) }

// Throttle levels of the endurance budget.
const (
	// ThrottleNone: the tenant is within its endurance envelope.
	ThrottleNone = 0
	// ThrottleSoft: the bucket is running low; admission continues with
	// the sieve threshold raised by Config.ThrottlePenalty.
	ThrottleSoft = 1
	// ThrottleHard: the bucket is empty; admission is denied until the
	// envelope refills.
	ThrottleHard = 2
)

// DenyPenalty is the sieve-threshold delta that encodes "denied": large
// enough that no window counter (they saturate at 65535) can reach it,
// so the sieve keeps counting the tenant's misses without ever
// admitting. Core uses it for quota and hard-endurance denials.
const DenyPenalty = 1 << 20

// Config parameterizes an Accountant.
type Config struct {
	// CapacityBlocks is the cache capacity being partitioned (required).
	CapacityBlocks int64
	// BlockBytes is the cache block size (default block.Size); it converts
	// allocation-writes into endurance-bucket bytes.
	BlockBytes int64
	// Quotas enables per-tenant soft capacity quotas and their
	// repartitioning. Off, the Accountant only tracks.
	Quotas bool
	// EnduranceBytesPerDay is the SSD endurance envelope shared by all
	// tenants (each tenant's bucket refills at its capacity share of this
	// rate). 0 disables the endurance budget.
	EnduranceBytesPerDay int64
	// RepartitionEvery is the time-driven repartition interval. <= 0
	// disables the timer (epoch-boundary repartitions still run when the
	// caller forces them).
	RepartitionEvery time.Duration
	// ThrottlePenalty is added to a soft-throttled tenant's sieve
	// threshold (default 2).
	ThrottlePenalty int
	// FloorDiv sets the guaranteed per-tenant quota floor to
	// CapacityBlocks/(FloorDiv×tenants) (default 8). Smaller values
	// guarantee idle tenants more; larger values let hot tenants claim
	// more.
	FloorDiv int64
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.CapacityBlocks < 1 {
		return out, fmt.Errorf("tenant: CapacityBlocks must be ≥1, got %d", out.CapacityBlocks)
	}
	if out.BlockBytes == 0 {
		out.BlockBytes = block.Size
	}
	if out.BlockBytes < 1 {
		return out, fmt.Errorf("tenant: BlockBytes must be ≥1, got %d", out.BlockBytes)
	}
	if out.EnduranceBytesPerDay < 0 {
		return out, fmt.Errorf("tenant: EnduranceBytesPerDay must be ≥0, got %d", out.EnduranceBytesPerDay)
	}
	if out.ThrottlePenalty == 0 {
		out.ThrottlePenalty = 2
	}
	if out.ThrottlePenalty < 0 {
		return out, fmt.Errorf("tenant: ThrottlePenalty must be ≥0, got %d", out.ThrottlePenalty)
	}
	if out.FloorDiv == 0 {
		out.FloorDiv = 8
	}
	if out.FloorDiv < 1 {
		return out, fmt.Errorf("tenant: FloorDiv must be ≥1, got %d", out.FloorDiv)
	}
	return out, nil
}

// state is one tenant's accounting. Counters are atomics (bumped under
// shard locks or none at all); the endurance bucket has its own mutex.
type state struct {
	id ID

	reads, writes atomic.Int64 // lifetime block accesses
	hits          atomic.Int64 // lifetime block hits (cache or RAM tier)
	epochHits     atomic.Int64 // hits since the last repartition — the demand signal
	occupancy     atomic.Int64 // resident cache blocks
	quota         atomic.Int64 // current soft quota (blocks)
	allocWrites   atomic.Int64 // lifetime allocation-writes (blocks)

	quotaDenials    atomic.Int64 // admissions denied at/over quota
	throttleDenials atomic.Int64 // admissions denied by an empty endurance bucket
	clips           atomic.Int64 // epoch-selection blocks clipped (quota or endurance)
	throttles       atomic.Int64 // transitions from ThrottleNone into a throttled level
	throttled       atomic.Int32 // current throttle level

	// Endurance token bucket, guarded by emu. tokens is bytes; a zero
	// lastRefill marks a bucket that has never seen a clock yet.
	emu        sync.Mutex
	tokens     float64
	lastRefill int64
}

// Accountant tracks and enforces per-tenant QoS. The zero value is not
// usable; construct with New. A nil *Accountant is a valid "disabled"
// instance for the exported read-only methods.
type Accountant struct {
	cfg Config

	mu      sync.RWMutex
	tenants map[ID]*state
	count   atomic.Int64 // len(tenants), readable without mu

	repartitions   atomic.Int64
	deadline       atomic.Int64 // next time-driven repartition (UnixNanos)
	quotaDenials   atomic.Int64
	throttleDenial atomic.Int64
	selectionClips atomic.Int64
}

// New validates cfg and returns a ready Accountant.
func New(cfg Config) (*Accountant, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Accountant{cfg: c, tenants: make(map[ID]*state)}, nil
}

// QuotasEnabled reports whether capacity quotas are enforced.
func (a *Accountant) QuotasEnabled() bool { return a != nil && a.cfg.Quotas }

// EnduranceEnabled reports whether the endurance budget is active.
func (a *Accountant) EnduranceEnabled() bool { return a != nil && a.cfg.EnduranceBytesPerDay > 0 }

// get returns (creating on first sight) the tenant's state. A new
// tenant starts with an equal capacity share as its quota — existing
// tenants keep theirs until the next repartition, so the sum may
// transiently exceed capacity; quotas are soft — and a full endurance
// bucket.
func (a *Accountant) get(id ID) *state {
	a.mu.RLock()
	st := a.tenants[id]
	a.mu.RUnlock()
	if st != nil {
		return st
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if st = a.tenants[id]; st != nil {
		return st
	}
	st = &state{id: id}
	a.tenants[id] = st
	n := int64(len(a.tenants))
	a.count.Store(n)
	st.quota.Store(a.cfg.CapacityBlocks / n)
	st.tokens = a.burstBytes() // unpublished: no emu needed
	return st
}

// burstBytes is the bucket depth: one hour's worth of the whole
// envelope (bounded below so tiny envelopes still admit a few blocks).
func (a *Accountant) burstBytes() float64 {
	b := float64(a.cfg.EnduranceBytesPerDay) / 24
	if min := float64(8 * a.cfg.BlockBytes); b < min {
		b = min
	}
	return b
}

// refillLocked advances the bucket to now. Caller holds st.emu. The
// refill rate is the tenant's capacity share of the daily envelope:
// its quota fraction when quotas are on, an equal 1/N split otherwise.
func (a *Accountant) refillLocked(st *state, now time.Time) {
	n := now.UnixNano()
	if st.lastRefill == 0 {
		st.lastRefill = n
		return
	}
	dt := n - st.lastRefill
	if dt <= 0 {
		return
	}
	st.lastRefill = n
	share := 1.0
	if a.cfg.Quotas && a.cfg.CapacityBlocks > 0 {
		share = float64(st.quota.Load()) / float64(a.cfg.CapacityBlocks)
	} else if c := a.count.Load(); c > 0 {
		share = 1 / float64(c)
	}
	st.tokens += float64(a.cfg.EnduranceBytesPerDay) * share / float64(24*time.Hour) * float64(dt)
	if b := a.burstBytes(); st.tokens > b {
		st.tokens = b
	}
}

// levelLocked recomputes the throttle level from the bucket. Caller
// holds st.emu. Entering a throttled level from ThrottleNone counts one
// throttle event.
func (a *Accountant) levelLocked(st *state) int32 {
	var lvl int32
	switch {
	case st.tokens < float64(a.cfg.BlockBytes):
		lvl = ThrottleHard
	case st.tokens < a.burstBytes()/4:
		lvl = ThrottleSoft
	default:
		lvl = ThrottleNone
	}
	if prev := st.throttled.Swap(lvl); prev == ThrottleNone && lvl != ThrottleNone {
		st.throttles.Add(1)
	}
	return lvl
}

// OnAccess records blocks accessed by the tenant (one call per I/O).
func (a *Accountant) OnAccess(id ID, blocks int64, write bool) {
	if a == nil {
		return
	}
	st := a.get(id)
	if write {
		st.writes.Add(blocks)
	} else {
		st.reads.Add(blocks)
	}
}

// OnHits records blocks the tenant's accesses found cached (SSD or RAM
// tier). Hits both feed the lifetime hit ratio and accumulate the
// interval demand signal the next repartition divides capacity by.
func (a *Accountant) OnHits(id ID, hits int64) {
	if a == nil || hits <= 0 {
		return
	}
	st := a.get(id)
	st.hits.Add(hits)
	st.epochHits.Add(hits)
}

// Admission gates one block admission: extra is added to the tenant's
// sieve allocation threshold (DenyPenalty when the admission is denied
// outright). Quota denial means the tenant is at/over its soft quota;
// hard endurance throttle means its bucket is empty.
func (a *Accountant) Admission(id ID, now time.Time) (extra int, deny bool) {
	if a == nil {
		return 0, false
	}
	st := a.get(id)
	if a.cfg.Quotas && st.occupancy.Load() >= st.quota.Load() {
		st.quotaDenials.Add(1)
		a.quotaDenials.Add(1)
		deny = true
	}
	if a.cfg.EnduranceBytesPerDay > 0 {
		st.emu.Lock()
		a.refillLocked(st, now)
		lvl := a.levelLocked(st)
		st.emu.Unlock()
		switch lvl {
		case ThrottleHard:
			st.throttleDenials.Add(1)
			a.throttleDenial.Add(1)
			deny = true
		case ThrottleSoft:
			extra = a.cfg.ThrottlePenalty
		}
	}
	if deny {
		extra = DenyPenalty
	}
	return extra, deny
}

// OnAllocWrite charges blocks written into the cache on the tenant's
// behalf (sieve admissions, epoch batch installs) against its endurance
// bucket.
func (a *Accountant) OnAllocWrite(id ID, blocks int64, now time.Time) {
	if a == nil || blocks <= 0 {
		return
	}
	st := a.get(id)
	st.allocWrites.Add(blocks)
	if a.cfg.EnduranceBytesPerDay <= 0 {
		return
	}
	st.emu.Lock()
	a.refillLocked(st, now)
	st.tokens -= float64(blocks * a.cfg.BlockBytes)
	if st.tokens < 0 {
		st.tokens = 0
	}
	a.levelLocked(st)
	st.emu.Unlock()
}

// AllowanceBlocks returns how many allocation-writes the tenant's
// endurance bucket can afford right now (MaxInt64 with the budget off).
func (a *Accountant) AllowanceBlocks(id ID, now time.Time) int64 {
	if a == nil || a.cfg.EnduranceBytesPerDay <= 0 {
		return int64(^uint64(0) >> 1)
	}
	st := a.get(id)
	st.emu.Lock()
	a.refillLocked(st, now)
	n := int64(st.tokens) / a.cfg.BlockBytes
	st.emu.Unlock()
	if n < 0 {
		n = 0
	}
	return n
}

// OnInstall records one block becoming resident for the tenant.
func (a *Accountant) OnInstall(id ID) {
	if a == nil {
		return
	}
	a.get(id).occupancy.Add(1)
}

// OnEvict records one of the tenant's resident blocks leaving the cache
// (eviction, invalidation, epoch swap, snapshot replacement).
func (a *Accountant) OnEvict(id ID) {
	if a == nil {
		return
	}
	a.get(id).occupancy.Add(-1)
}

// NoteClip counts n of the tenant's epoch-selected blocks dropped by
// QoS (quota clip or an exhausted endurance budget).
func (a *Accountant) NoteClip(id ID, n int64) {
	if a == nil || n <= 0 {
		return
	}
	a.get(id).clips.Add(n)
	a.selectionClips.Add(n)
}

// ClipSelection enforces quotas on an epoch's hottest-first selection:
// each tenant keeps at most its quota blocks, order preserved. The
// input slice is filtered in place. No-op (zero clips) with quotas off.
func (a *Accountant) ClipSelection(keys []block.Key) ([]block.Key, int64) {
	if a == nil || !a.cfg.Quotas {
		return keys, 0
	}
	taken := make(map[ID]int64)
	out := keys[:0]
	var clipped int64
	for _, k := range keys {
		id := IDOf(k)
		if taken[id] >= a.get(id).quota.Load() {
			a.NoteClip(id, 1)
			clipped++
			continue
		}
		taken[id]++
		out = append(out, k)
	}
	return out, clipped
}

// MaybeRepartition runs a repartition if the time-driven interval has
// elapsed. One atomic load on the fast path; safe to call per-op.
func (a *Accountant) MaybeRepartition(now time.Time) {
	if a == nil || a.cfg.RepartitionEvery <= 0 {
		return
	}
	n := now.UnixNano()
	d := a.deadline.Load()
	if n < d {
		return
	}
	if !a.deadline.CompareAndSwap(d, n+int64(a.cfg.RepartitionEvery)) {
		return // another caller claimed this boundary
	}
	a.Repartition(now)
}

// Repartition reassigns quotas by demand: each tenant gets the floor
// (CapacityBlocks/(FloorDiv×N)) plus its share of the remaining
// capacity proportional to its interval hits, and the interval counters
// reset. An interval with no hits anywhere keeps the current split
// (there is no demand signal to act on — and resetting to an equal
// split would thrash quotas on idle systems). With quotas off this only
// resets the interval counters. Safe to call concurrently with
// accounting; assignment per tenant is independent, so map iteration
// order does not matter.
func (a *Accountant) Repartition(now time.Time) {
	if a == nil {
		return
	}
	_ = now // the signature matches the injected-clock call sites
	a.mu.Lock()
	defer a.mu.Unlock()
	n := int64(len(a.tenants))
	if n == 0 {
		return
	}
	var sum int64
	for _, st := range a.tenants {
		sum += st.epochHits.Load()
	}
	if sum <= 0 {
		return
	}
	if !a.cfg.Quotas {
		for _, st := range a.tenants {
			st.epochHits.Store(0)
		}
		a.repartitions.Add(1)
		return
	}
	floor := a.cfg.CapacityBlocks / (a.cfg.FloorDiv * n)
	if floor < 1 {
		floor = 1
	}
	avail := a.cfg.CapacityBlocks - floor*n
	if avail < 0 {
		// Capacity too small for even one-block floors: fall back to an
		// equal split.
		floor = a.cfg.CapacityBlocks / n
		avail = 0
	}
	for _, st := range a.tenants {
		h := st.epochHits.Swap(0)
		st.quota.Store(floor + avail*h/sum)
	}
	a.repartitions.Add(1)
}

// Snapshot is one tenant's externally visible accounting.
type Snapshot struct {
	ID              ID    `json:"-"`
	Server          int   `json:"server"`
	Volume          int   `json:"volume"`
	QuotaBlocks     int64 `json:"quota_blocks"`
	OccupancyBlocks int64 `json:"occupancy_blocks"`
	Reads           int64 `json:"reads"`
	Writes          int64 `json:"writes"`
	Hits            int64 `json:"hits"`
	AllocWrites     int64 `json:"alloc_writes"`
	QuotaDenials    int64 `json:"quota_denials"`
	ThrottleDenials int64 `json:"throttle_denials"`
	SelectionClips  int64 `json:"selection_clips"`
	Throttles       int64 `json:"throttles"`
	Throttled       int   `json:"throttled"` // 0 none, 1 soft, 2 hard
	EnduranceTokens int64 `json:"endurance_tokens_bytes"`
}

// HitRatio returns the tenant's lifetime hit fraction.
func (s Snapshot) HitRatio() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Snapshot returns every tenant's accounting, sorted by ID.
func (a *Accountant) Snapshot() []Snapshot {
	if a == nil {
		return nil
	}
	a.mu.RLock()
	states := make([]*state, 0, len(a.tenants))
	for _, st := range a.tenants {
		states = append(states, st)
	}
	a.mu.RUnlock()
	sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })
	out := make([]Snapshot, len(states))
	for i, st := range states {
		st.emu.Lock()
		tokens := int64(st.tokens)
		st.emu.Unlock()
		out[i] = Snapshot{
			ID:              st.id,
			Server:          st.id.Server(),
			Volume:          st.id.Volume(),
			QuotaBlocks:     st.quota.Load(),
			OccupancyBlocks: st.occupancy.Load(),
			Reads:           st.reads.Load(),
			Writes:          st.writes.Load(),
			Hits:            st.hits.Load(),
			AllocWrites:     st.allocWrites.Load(),
			QuotaDenials:    st.quotaDenials.Load(),
			ThrottleDenials: st.throttleDenials.Load(),
			SelectionClips:  st.clips.Load(),
			Throttles:       st.throttles.Load(),
			Throttled:       int(st.throttled.Load()),
			EnduranceTokens: tokens,
		}
	}
	return out
}

// Totals aggregates the store-level QoS counters.
type Totals struct {
	Tenants         int64
	QuotaDenials    int64
	ThrottleDenials int64
	SelectionClips  int64
	Repartitions    int64
}

// Totals returns the aggregated counters.
func (a *Accountant) Totals() Totals {
	if a == nil {
		return Totals{}
	}
	return Totals{
		Tenants:         a.count.Load(),
		QuotaDenials:    a.quotaDenials.Load(),
		ThrottleDenials: a.throttleDenial.Load(),
		SelectionClips:  a.selectionClips.Load(),
		Repartitions:    a.repartitions.Load(),
	}
}
