package tenant

import (
	"math"
	"testing"
	"time"

	"repro/internal/block"
)

// Unit suite for the Accountant: ID packing, config validation, quota
// assignment and repartitioning math, the endurance token bucket's
// levels and refill, selection clipping, and the snapshot/totals
// surface. The adversarial end-to-end scenarios live in
// internal/core/tenant_test.go; this file pins the package's own
// arithmetic with a hand-computable configuration.

func TestIDPacking(t *testing.T) {
	for _, tc := range []struct{ server, volume int }{
		{0, 0}, {0, 63}, {63, 0}, {63, 63}, {2, 3}, {17, 40},
	} {
		id := MakeID(tc.server, tc.volume)
		if id.Server() != tc.server || id.Volume() != tc.volume {
			t.Errorf("MakeID(%d,%d) round-trips to (%d,%d)",
				tc.server, tc.volume, id.Server(), id.Volume())
		}
		// The packing must agree with block.Key's field layout for every
		// block number, including the extremes.
		for _, n := range []uint64{0, 1, block.MaxBlockNumber} {
			if got := IDOf(block.MakeKey(tc.server, tc.volume, n)); got != id {
				t.Errorf("IDOf(MakeKey(%d,%d,%d)) = %v, want %v",
					tc.server, tc.volume, n, got, id)
			}
		}
	}
	if s := MakeID(5, 7).String(); s != "5/7" {
		t.Errorf("String() = %q, want 5/7", s)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"zero capacity", Config{}},
		{"negative capacity", Config{CapacityBlocks: -1}},
		{"negative block size", Config{CapacityBlocks: 64, BlockBytes: -1}},
		{"negative endurance", Config{CapacityBlocks: 64, EnduranceBytesPerDay: -1}},
		{"negative penalty", Config{CapacityBlocks: 64, ThrottlePenalty: -1}},
		{"negative floor div", Config{CapacityBlocks: 64, FloorDiv: -1}},
	} {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted %+v", tc.name, tc.cfg)
		}
	}
	a, err := New(Config{CapacityBlocks: 64})
	if err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	if a.QuotasEnabled() || a.EnduranceEnabled() {
		t.Error("minimal config should have quotas and endurance off")
	}
}

func TestNilAccountantIsDisabled(t *testing.T) {
	var a *Accountant
	if a.QuotasEnabled() || a.EnduranceEnabled() {
		t.Error("nil accountant reports features enabled")
	}
	now := time.Unix(0, 0)
	id := MakeID(1, 2)
	// Every method must be a safe no-op on nil.
	a.OnAccess(id, 4, false)
	a.OnHits(id, 2)
	a.OnInstall(id)
	a.OnEvict(id)
	a.OnAllocWrite(id, 1, now)
	a.NoteClip(id, 1)
	a.MaybeRepartition(now)
	a.Repartition(now)
	if extra, deny := a.Admission(id, now); extra != 0 || deny {
		t.Errorf("nil Admission = (%d, %v), want (0, false)", extra, deny)
	}
	if got := a.AllowanceBlocks(id, now); got != math.MaxInt64 {
		t.Errorf("nil AllowanceBlocks = %d, want MaxInt64", got)
	}
	keys := []block.Key{block.MakeKey(1, 2, 3)}
	if out, clipped := a.ClipSelection(keys); clipped != 0 || len(out) != 1 {
		t.Errorf("nil ClipSelection clipped %d of %d", clipped, len(out))
	}
	if s := a.Snapshot(); s != nil {
		t.Errorf("nil Snapshot = %v, want nil", s)
	}
	if tot := a.Totals(); tot != (Totals{}) {
		t.Errorf("nil Totals = %+v, want zero", tot)
	}
}

// TestInitialQuotas: a tenant's first quota is an equal share of
// capacity at the moment it appears; earlier tenants keep theirs until
// the next repartition.
func TestInitialQuotas(t *testing.T) {
	a, err := New(Config{CapacityBlocks: 64, Quotas: true})
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := MakeID(0, 0), MakeID(0, 1)
	a.OnAccess(t1, 1, false)
	a.OnAccess(t2, 1, false)
	snap := a.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d tenants, want 2", len(snap))
	}
	if snap[0].QuotaBlocks != 64 || snap[1].QuotaBlocks != 32 {
		t.Errorf("initial quotas = %d, %d; want 64, 32",
			snap[0].QuotaBlocks, snap[1].QuotaBlocks)
	}
	if got := a.Totals().Tenants; got != 2 {
		t.Errorf("Totals().Tenants = %d, want 2", got)
	}
}

// TestRepartition pins the quota formula: floor = capacity/(FloorDiv×N)
// plus the remainder split proportionally to interval hits, idle tenants
// donating down to the floor; an interval with no hits anywhere keeps
// the current split.
func TestRepartition(t *testing.T) {
	a, err := New(Config{CapacityBlocks: 64, Quotas: true})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_000_000, 0)
	t1, t2 := MakeID(0, 0), MakeID(0, 1)
	a.OnHits(t1, 30)
	a.OnHits(t2, 10)
	a.Repartition(now)
	// floor = 64/(8×2) = 4 each; avail = 64−8 = 56 split 30:10.
	snap := a.Snapshot()
	if snap[0].QuotaBlocks != 4+56*30/40 || snap[1].QuotaBlocks != 4+56*10/40 {
		t.Errorf("quotas after 30:10 = %d, %d; want 46, 18",
			snap[0].QuotaBlocks, snap[1].QuotaBlocks)
	}
	if got := a.Totals().Repartitions; got != 1 {
		t.Errorf("repartitions = %d, want 1", got)
	}

	// The interval counters were consumed: a hitless interval keeps the
	// split and does not count as a repartition.
	a.Repartition(now)
	if got := a.Totals().Repartitions; got != 1 {
		t.Errorf("hitless repartition counted: %d", got)
	}
	snap = a.Snapshot()
	if snap[0].QuotaBlocks != 46 || snap[1].QuotaBlocks != 18 {
		t.Errorf("hitless interval moved quotas to %d, %d", snap[0].QuotaBlocks, snap[1].QuotaBlocks)
	}

	// A fully idle tenant donates down to the floor.
	a.OnHits(t1, 100)
	a.Repartition(now)
	snap = a.Snapshot()
	if snap[0].QuotaBlocks != 60 || snap[1].QuotaBlocks != 4 {
		t.Errorf("idle-donation quotas = %d, %d; want 60, 4",
			snap[0].QuotaBlocks, snap[1].QuotaBlocks)
	}

	// Lifetime hits survive the interval resets.
	if snap[0].Hits != 130 || snap[1].Hits != 10 {
		t.Errorf("lifetime hits = %d, %d; want 130, 10", snap[0].Hits, snap[1].Hits)
	}
}

// TestRepartitionTinyCapacity: when the capacity cannot fund one-block
// floors the split falls back to equal shares.
func TestRepartitionTinyCapacity(t *testing.T) {
	a, err := New(Config{CapacityBlocks: 3, Quotas: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		a.OnHits(MakeID(0, v), int64(v+1))
	}
	a.Repartition(time.Unix(0, 1))
	for _, s := range a.Snapshot() {
		if s.QuotaBlocks != 0 { // 3/4 == 0: equal-split fallback
			t.Errorf("tenant %d/%d quota = %d, want 0", s.Server, s.Volume, s.QuotaBlocks)
		}
	}
}

func TestMaybeRepartitionInterval(t *testing.T) {
	a, err := New(Config{CapacityBlocks: 64, Quotas: true, RepartitionEvery: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_000_000, 0)
	id := MakeID(0, 0)
	a.OnHits(id, 5)
	a.MaybeRepartition(base) // first call: deadline unset, fires
	if got := a.Totals().Repartitions; got != 1 {
		t.Fatalf("first MaybeRepartition: %d repartitions, want 1", got)
	}
	a.OnHits(id, 5)
	a.MaybeRepartition(base.Add(30 * time.Second))
	if got := a.Totals().Repartitions; got != 1 {
		t.Errorf("mid-interval MaybeRepartition fired: %d", got)
	}
	a.MaybeRepartition(base.Add(61 * time.Second))
	if got := a.Totals().Repartitions; got != 2 {
		t.Errorf("post-interval MaybeRepartition: %d repartitions, want 2", got)
	}

	// A disabled timer never fires.
	off, err := New(Config{CapacityBlocks: 64, Quotas: true, RepartitionEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	off.OnHits(id, 5)
	off.MaybeRepartition(base.Add(time.Hour))
	if got := off.Totals().Repartitions; got != 0 {
		t.Errorf("disabled timer fired: %d", got)
	}
}

// TestQuotaAdmission: at/over quota the admission is denied with
// DenyPenalty; dropping below quota (eviction) lifts the denial
// immediately.
func TestQuotaAdmission(t *testing.T) {
	a, err := New(Config{CapacityBlocks: 4, Quotas: true, FloorDiv: 4})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_000_000, 0)
	id := MakeID(0, 0)
	for i := 0; i < 4; i++ {
		if extra, deny := a.Admission(id, now); deny || extra != 0 {
			t.Fatalf("admission %d under quota: (%d, %v)", i, extra, deny)
		}
		a.OnInstall(id)
	}
	extra, deny := a.Admission(id, now)
	if !deny || extra != DenyPenalty {
		t.Fatalf("admission at quota: (%d, %v), want (DenyPenalty, true)", extra, deny)
	}
	snap := a.Snapshot()
	if snap[0].QuotaDenials != 1 || a.Totals().QuotaDenials != 1 {
		t.Errorf("quota denial counters = %d / %d, want 1 / 1",
			snap[0].QuotaDenials, a.Totals().QuotaDenials)
	}
	a.OnEvict(id)
	if _, deny := a.Admission(id, now); deny {
		t.Error("admission still denied after eviction freed a block")
	}
}

// TestEnduranceBucket walks the token bucket through its three levels
// with a hand-computed envelope: capacity 64 blocks of 512 B and an
// envelope of 24×64×512 B/day gives a burst (hour's worth) of exactly
// 64 blocks, a soft threshold at 16 blocks, and a hard floor below one
// block.
func TestEnduranceBucket(t *testing.T) {
	const envelope = 24 * 64 * 512
	a, err := New(Config{CapacityBlocks: 64, BlockBytes: 512, EnduranceBytesPerDay: envelope})
	if err != nil {
		t.Fatal(err)
	}
	if !a.EnduranceEnabled() {
		t.Fatal("endurance not enabled")
	}
	now := time.Unix(1_000_000, 0)
	id := MakeID(0, 0)

	// Fresh bucket: full burst, no throttle.
	if extra, deny := a.Admission(id, now); extra != 0 || deny {
		t.Fatalf("fresh bucket admission = (%d, %v)", extra, deny)
	}
	if got := a.AllowanceBlocks(id, now); got != 64 {
		t.Fatalf("fresh allowance = %d blocks, want 64", got)
	}

	// Drain to 8 blocks: below the 16-block soft threshold.
	a.OnAllocWrite(id, 56, now)
	if extra, deny := a.Admission(id, now); deny || extra != 2 {
		t.Errorf("soft-throttled admission = (%d, %v), want (2, false)", extra, deny)
	}
	snap := a.Snapshot()
	if snap[0].Throttled != ThrottleSoft || snap[0].Throttles != 1 {
		t.Errorf("after drain: throttled=%d throttles=%d, want soft/1",
			snap[0].Throttled, snap[0].Throttles)
	}

	// Drain dry: hard denial.
	a.OnAllocWrite(id, 8, now)
	extra, deny := a.Admission(id, now)
	if !deny || extra != DenyPenalty {
		t.Fatalf("empty-bucket admission = (%d, %v), want (DenyPenalty, true)", extra, deny)
	}
	if got := a.AllowanceBlocks(id, now); got != 0 {
		t.Errorf("empty allowance = %d, want 0", got)
	}
	snap = a.Snapshot()
	if snap[0].Throttled != ThrottleHard {
		t.Errorf("throttled = %d, want hard", snap[0].Throttled)
	}
	if snap[0].ThrottleDenials != 1 || a.Totals().ThrottleDenials != 1 {
		t.Errorf("throttle denials = %d / %d, want 1 / 1",
			snap[0].ThrottleDenials, a.Totals().ThrottleDenials)
	}
	if snap[0].AllocWrites != 64 {
		t.Errorf("alloc writes = %d, want 64", snap[0].AllocWrites)
	}
	// Overdraw clamps at zero, never negative.
	a.OnAllocWrite(id, 100, now)
	if s := a.Snapshot()[0]; s.EnduranceTokens < 0 {
		t.Errorf("tokens went negative: %d", s.EnduranceTokens)
	}

	// Half an hour refills half the burst (single tenant, full share):
	// 32 blocks — back above the soft threshold. (±1 block: the refill
	// integrates the rate in float64.)
	later := now.Add(30 * time.Minute)
	if extra, deny := a.Admission(id, later); extra != 0 || deny {
		t.Errorf("refilled admission = (%d, %v), want (0, false)", extra, deny)
	}
	if got := a.AllowanceBlocks(id, later); got < 31 || got > 32 {
		t.Errorf("refilled allowance = %d blocks, want 32±1", got)
	}
	// Hours later the bucket caps at the burst, no further.
	if got := a.AllowanceBlocks(id, later.Add(12*time.Hour)); got != 64 {
		t.Errorf("capped allowance = %d blocks, want 64", got)
	}
	// The throttles counter counts none→throttled transitions only: one
	// more full drain cycle adds exactly one.
	a.OnAllocWrite(id, 64, later.Add(12*time.Hour))
	if s := a.Snapshot()[0]; s.Throttles != 2 {
		t.Errorf("throttles after second drain = %d, want 2", s.Throttles)
	}
}

// TestEnduranceShareSplit: with quotas off, N tenants refill at 1/N of
// the envelope each; with quotas on, at their quota share.
func TestEnduranceShareSplit(t *testing.T) {
	const envelope = 24 * 64 * 512
	a, err := New(Config{CapacityBlocks: 64, BlockBytes: 512, EnduranceBytesPerDay: envelope})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_000_000, 0)
	t1, t2 := MakeID(0, 0), MakeID(0, 1)
	// Drain both buckets dry, then refill for an hour: each gets 1/2 of
	// the hourly envelope (32 blocks).
	a.OnAllocWrite(t1, 64, now)
	a.OnAllocWrite(t2, 64, now)
	later := now.Add(time.Hour)
	g1, g2 := a.AllowanceBlocks(t1, later), a.AllowanceBlocks(t2, later)
	if g1 < 31 || g1 > 32 || g2 < 31 || g2 > 32 {
		t.Errorf("equal-split refill = %d, %d blocks; want 32±1 each", g1, g2)
	}

	// Quota share: a tenant holding 16 of 64 blocks of quota refills at
	// a quarter rate.
	q, err := New(Config{CapacityBlocks: 64, BlockBytes: 512, Quotas: true, EnduranceBytesPerDay: envelope})
	if err != nil {
		t.Fatal(err)
	}
	q.OnHits(t1, 3)
	q.OnHits(t2, 1)
	q.Repartition(now) // quotas: floor 4 + 56×{3,1}/4 = 46 and 18
	q.OnAllocWrite(t1, 64, now)
	q.OnAllocWrite(t2, 64, now)
	h1, h2 := q.AllowanceBlocks(t1, later), q.AllowanceBlocks(t2, later)
	// Hourly burst × quota share: 64×46/64 = 46 and 64×18/64 = 18.
	if h1 < 45 || h1 > 46 || h2 < 17 || h2 > 18 {
		t.Errorf("quota-share refill = %d, %d blocks; want 46, 18 (±1)", h1, h2)
	}
}

func TestClipSelection(t *testing.T) {
	a, err := New(Config{CapacityBlocks: 8, Quotas: true})
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := MakeID(0, 0), MakeID(0, 1)
	a.OnAccess(ta, 1, false) // quota 8 (first tenant)
	a.OnAccess(tb, 1, false) // quota 4 (second)

	var keys []block.Key
	for i := uint64(0); i < 10; i++ { // interleaved hottest-first
		keys = append(keys, block.MakeKey(0, 0, i), block.MakeKey(0, 1, i))
	}
	out, clipped := a.ClipSelection(keys)
	if clipped != 2+6 {
		t.Errorf("clipped = %d, want 8 (2 over A's 8, 6 over B's 4)", clipped)
	}
	// Exact expected survivors: B clipped after 4, A after 8, original
	// interleaved order preserved.
	var want []block.Key
	for i := uint64(0); i < 8; i++ {
		want = append(want, block.MakeKey(0, 0, i))
		if i < 4 {
			want = append(want, block.MakeKey(0, 1, i))
		}
	}
	if len(out) != len(want) {
		t.Fatalf("kept %d keys, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("clip output[%d] = %v, want %v (order not preserved?)", i, out[i], want[i])
		}
	}
	if got := a.Totals().SelectionClips; got != 8 {
		t.Errorf("Totals().SelectionClips = %d, want 8", got)
	}
	snap := a.Snapshot()
	if snap[0].SelectionClips != 2 || snap[1].SelectionClips != 6 {
		t.Errorf("per-tenant clips = %d, %d; want 2, 6",
			snap[0].SelectionClips, snap[1].SelectionClips)
	}

	// Quotas off: pass-through, no clips.
	na8, _ := New(Config{CapacityBlocks: 8})
	out, clipped = na8.ClipSelection(keys)
	if clipped != 0 || len(out) != len(keys) {
		t.Errorf("quotas-off clip = %d of %d", clipped, len(out))
	}
}

func TestSnapshotSortedAndCounters(t *testing.T) {
	a, err := New(Config{CapacityBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Arrive out of order; Snapshot must sort by (server, volume).
	for _, id := range []ID{MakeID(3, 1), MakeID(0, 2), MakeID(1, 0)} {
		a.OnAccess(id, 2, false)
		a.OnAccess(id, 1, true)
		a.OnHits(id, 1)
		a.OnInstall(id)
	}
	snap := a.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d tenants, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].ID >= snap[i].ID {
			t.Errorf("snapshot not sorted: %v before %v", snap[i-1].ID, snap[i].ID)
		}
	}
	for _, s := range snap {
		if s.Reads != 2 || s.Writes != 1 || s.Hits != 1 || s.OccupancyBlocks != 1 {
			t.Errorf("tenant %d/%d counters = %+v", s.Server, s.Volume, s)
		}
		if got, want := s.HitRatio(), 1.0/3; math.Abs(got-want) > 1e-12 {
			t.Errorf("hit ratio = %v, want %v", got, want)
		}
	}
	if (Snapshot{}).HitRatio() != 0 {
		t.Error("empty snapshot hit ratio should be 0")
	}
}
