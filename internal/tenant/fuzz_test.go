package tenant

import (
	"testing"
	"time"
)

// FuzzTenantAccounting drives a byte-decoded op sequence through an
// Accountant and a trivially-correct model (plain maps, no atomics, no
// buckets), then checks that the Accountant's snapshot matches the
// model and that the package invariants hold:
//
//   - per-tenant occupancy, reads, writes, hits, and alloc-writes match
//     the model exactly, and occupancy is never negative;
//   - after any counted repartition, every quota is at least the floor
//     and the quotas sum to at most the capacity;
//   - endurance tokens are never negative;
//   - the snapshot is sorted by tenant ID with no duplicates.
//
// The op stream mirrors the store's call discipline (OnEvict only fires
// for a resident block), which the core layer guarantees by charging
// occupancy moves at the tags-mutation sites.
func FuzzTenantAccounting(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x12, 0x23, 0x34, 0x45, 0x56, 0x67})
	f.Add([]byte{0xFF, 0x03, 0x10, 0x21, 0x32, 0x43, 0x54, 0x65, 0x06, 0x17})
	f.Add([]byte{0x55, 0x02, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
		0x50, 0x51, 0x52, 0x53, 0x54, 0x55, 0x56, 0x57})

	f.Fuzz(func(t *testing.T, data []byte) {
		const capacity = 64
		// The first byte picks the feature mix so every combination of
		// quotas × endurance gets fuzzed.
		var quotas bool
		var envelope int64
		if len(data) > 0 {
			quotas = data[0]&1 != 0
			if data[0]&2 != 0 {
				envelope = 24 * capacity * 512 // burst = capacity blocks
			}
			data = data[1:]
		}
		a, err := New(Config{
			CapacityBlocks:       capacity,
			BlockBytes:           512,
			Quotas:               quotas,
			EnduranceBytesPerDay: envelope,
		})
		if err != nil {
			t.Fatal(err)
		}

		type mstate struct {
			occ, reads, writes, hits, allocs int64
		}
		model := make(map[ID]*mstate)
		mget := func(id ID) *mstate {
			st := model[id]
			if st == nil {
				st = &mstate{}
				model[id] = st
			}
			return st
		}

		now := time.Unix(1_000_000, 0)
		repartitioned := false
		nAtRepart := 0
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]>>4, int64(data[i]&0xF)+1
			// Eight tenants: two servers × four volumes. The model entry is
			// created only for ops that actually reach the Accountant, so
			// the tenant sets stay in lockstep.
			id := MakeID(int(data[i+1]&1), int(data[i+1]>>1&3))
			switch op % 8 {
			case 0: // read access
				a.OnAccess(id, arg, false)
				mget(id).reads += arg
			case 1: // write access
				a.OnAccess(id, arg, true)
				mget(id).writes += arg
			case 2: // hits
				a.OnHits(id, arg)
				mget(id).hits += arg
			case 3: // install
				a.OnInstall(id)
				mget(id).occ++
			case 4: // evict — only ever called for a resident block,
				// mirroring the store's call discipline
				if st := model[id]; st != nil && st.occ > 0 {
					a.OnEvict(id)
					st.occ--
				}
			case 5: // allocation write (charges the bucket)
				a.OnAllocWrite(id, arg, now)
				mget(id).allocs += arg
			case 6: // admission probe (may deny; counters only)
				a.Admission(id, now)
				mget(id)
			case 7: // time advances, then a forced repartition
				now = now.Add(time.Duration(arg) * time.Second)
				before := a.Totals().Repartitions
				a.Repartition(now)
				if a.Totals().Repartitions > before {
					repartitioned = true
					nAtRepart = len(model)
				}
			}
		}

		snap := a.Snapshot()
		seen := make(map[ID]bool)
		var quotaSum int64
		for i, s := range snap {
			if i > 0 && snap[i-1].ID >= s.ID {
				t.Fatalf("snapshot unsorted at %d: %v then %v", i, snap[i-1].ID, s.ID)
			}
			if seen[s.ID] {
				t.Fatalf("duplicate tenant %v in snapshot", s.ID)
			}
			seen[s.ID] = true
			m := model[s.ID]
			if m == nil {
				t.Fatalf("tenant %v in snapshot but not in model", s.ID)
			}
			if s.OccupancyBlocks < 0 {
				t.Fatalf("tenant %v occupancy negative: %d", s.ID, s.OccupancyBlocks)
			}
			if s.OccupancyBlocks != m.occ || s.Reads != m.reads || s.Writes != m.writes ||
				s.Hits != m.hits || s.AllocWrites != m.allocs {
				t.Fatalf("tenant %v: snapshot {occ %d r %d w %d h %d aw %d} != model %+v",
					s.ID, s.OccupancyBlocks, s.Reads, s.Writes, s.Hits, s.AllocWrites, *m)
			}
			if s.EnduranceTokens < 0 {
				t.Fatalf("tenant %v endurance tokens negative: %d", s.ID, s.EnduranceTokens)
			}
			quotaSum += s.QuotaBlocks
		}
		if len(snap) != len(model) {
			t.Fatalf("snapshot has %d tenants, model %d", len(snap), len(model))
		}
		if quotas && repartitioned && len(model) == nAtRepart {
			// After a counted repartition with no tenants arriving since,
			// the split is exact: floors are honored and the sum fits in
			// capacity. (A tenant arriving later starts at an equal share,
			// which may transiently push the sum over — quotas are soft.)
			n := int64(len(snap))
			floor := int64(capacity) / (8 * n)
			if floor < 1 {
				floor = 1
			}
			if int64(capacity)-floor*n < 0 {
				floor = int64(capacity) / n
			}
			for _, s := range snap {
				if s.QuotaBlocks < floor {
					t.Fatalf("tenant %v quota %d below floor %d", s.ID, s.QuotaBlocks, floor)
				}
			}
			if quotaSum > capacity {
				t.Fatalf("quotas sum to %d > capacity %d after repartition", quotaSum, capacity)
			}
		}
	})
}
