// The advisor turns the per-epoch access counts the SieveStore-D logger
// already collects into tier-sizing recommendations against the paper's
// drive-cost model: IOPS occupancy → devices needed (internal/ssd's
// DeviceSpec), extended with a $/GiB RAM-vs-SSD axis per TierBase. The
// paper's static cost-performance tables become a live control loop — the
// epochs measure the hot-set IOPS distribution, the advisor sweeps
// candidate RAM-tier sizes, and either /statusz surfaces the
// recommendation or autotune applies it at the next epoch boundary.
package tier

import (
	"math"
	"sort"

	"repro/internal/block"
	"repro/internal/ssd"
)

// CostModel prices the two-tier appliance. The defaults reproduce the
// paper's 2010-era parts (Intel X25-E, ~$10-15/GB SLC flash, commodity
// 15k-RPM ensemble drives); they are knobs, not truths — TierBase's point
// is that the optimum moves with the prices.
type CostModel struct {
	// RAMDollarsPerGiB prices the tier's DRAM (default 30).
	RAMDollarsPerGiB float64
	// SSDDevice is the SSD spec used for IOPS-occupancy sizing (default
	// ssd.IntelX25E). Imbalance derates its throughput like ssd.Array.
	SSDDevice ssd.DeviceSpec
	// SSDDeviceBytes is one SSD's capacity (default 32 GiB, the paper's
	// X25-E).
	SSDDeviceBytes int64
	// SSDDeviceDollars prices one SSD (default 400).
	SSDDeviceDollars float64
	// Imbalance derates per-device throughput for load skew across an
	// array (default 1.1, matching ssd.Array).
	Imbalance float64
}

func (m *CostModel) withDefaults() CostModel {
	out := *m
	if out.RAMDollarsPerGiB == 0 {
		out.RAMDollarsPerGiB = 30
	}
	if out.SSDDevice.ReadIOPS == 0 {
		out.SSDDevice = ssd.IntelX25E()
	}
	if out.SSDDeviceBytes == 0 {
		out.SSDDeviceBytes = 32 << 30
	}
	if out.SSDDeviceDollars == 0 {
		out.SSDDeviceDollars = 400
	}
	if out.Imbalance == 0 {
		out.Imbalance = 1.1
	}
	return out
}

// Candidate is one evaluated RAM-tier size.
type Candidate struct {
	RAMBytes int64 `json:"ram_bytes"`
	// RAMHitsPerSec is the access rate the RAM tier would absorb — the
	// hottest RAMBytes/512 blocks' epoch counts over the epoch length.
	RAMHitsPerSec float64 `json:"ram_hits_per_sec"`
	// SSDIOPS is the access rate left for the SSD array.
	SSDIOPS float64 `json:"ssd_iops"`
	// SSDDevices is how many SSDs the array needs: the max of the
	// capacity-driven and IOPS-occupancy-driven counts. RAM absorbing the
	// top of the distribution is exactly what shrinks the second term.
	SSDDevices int `json:"ssd_devices"`
	// DollarCost = RAM $/GiB · size + SSDDevices · $/device.
	DollarCost float64 `json:"dollar_cost"`
}

// Advice is one epoch's recommendation.
type Advice struct {
	// RecommendedBytes minimizes DollarCost over the candidate sweep
	// (smallest size on ties — RAM that buys nothing is not bought).
	RecommendedBytes int64 `json:"recommended_bytes"`
	CurrentBytes     int64 `json:"current_bytes"`
	// EpochSeconds is the measurement window the rates were derived from.
	EpochSeconds float64     `json:"epoch_seconds"`
	TrackedKeys  int         `json:"tracked_keys"`
	Candidates   []Candidate `json:"candidates"`
}

// Advisor sweeps candidate RAM-tier sizes against an epoch's access-count
// distribution. Stateless and deterministic: same counts, same advice.
type Advisor struct {
	Model CostModel
	// SSDBytes is the SSD tier's configured capacity (core CacheBytes).
	SSDBytes int64
	// MinBytes/MaxBytes bound the candidate sizes (and autotune).
	MinBytes int64
	MaxBytes int64
}

// candidateSizes is the swept fraction-of-SSD ladder, in thousandths
// (0%, 1%, 2%, 5%, 10%, 20% of the SSD tier).
var candidateSizes = []int64{0, 10, 20, 50, 100, 200}

// Analyze derives an Advice from one epoch's per-block access counts
// (order-insensitive; counts is not retained) measured over epochSeconds,
// with the tier currently sized at currentBytes.
func (a *Advisor) Analyze(counts []int64, epochSeconds float64, currentBytes int64) Advice {
	m := a.Model.withDefaults()
	if epochSeconds <= 0 {
		epochSeconds = 1
	}
	sorted := append([]int64(nil), counts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	// prefix[k] = accesses/sec absorbed by a tier holding the k hottest
	// blocks.
	prefix := make([]float64, len(sorted)+1)
	for i, c := range sorted {
		prefix[i+1] = prefix[i] + float64(c)
	}
	total := prefix[len(sorted)] / epochSeconds

	seen := map[int64]bool{}
	var sizes []int64
	add := func(b int64) {
		b -= b % block.Size
		if b < 0 || b > a.MaxBytes && a.MaxBytes > 0 {
			return
		}
		if a.MinBytes > 0 && b != 0 && b < a.MinBytes {
			return
		}
		if !seen[b] {
			seen[b] = true
			sizes = append(sizes, b)
		}
	}
	for _, th := range candidateSizes {
		add(a.SSDBytes / 1000 * th)
	}
	add(currentBytes)
	add(a.MinBytes)
	add(a.MaxBytes)
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })

	adv := Advice{
		CurrentBytes: currentBytes,
		EpochSeconds: epochSeconds,
		TrackedKeys:  len(sorted),
	}
	capacityDevices := int(ceilDiv(a.SSDBytes, m.SSDDeviceBytes))
	if capacityDevices < 1 {
		capacityDevices = 1
	}
	best := -1
	for _, ram := range sizes {
		k := int(ram / block.Size)
		if k > len(sorted) {
			k = len(sorted)
		}
		ramHz := prefix[k] / epochSeconds
		ssdHz := total - ramHz
		// One device serves ReadIOPS/Imbalance 4 KiB ops/s at full
		// occupancy; block accesses here are 512 B, conservatively charged
		// as one device op each (the paper's occupancy accounting).
		perDevice := m.SSDDevice.ReadIOPS / m.Imbalance
		iopsDevices := int(math.Ceil(ssdHz / perDevice))
		devices := capacityDevices
		if iopsDevices > devices {
			devices = iopsDevices
		}
		cand := Candidate{
			RAMBytes:      ram,
			RAMHitsPerSec: ramHz,
			SSDIOPS:       ssdHz,
			SSDDevices:    devices,
			DollarCost: float64(ram)/float64(1<<30)*m.RAMDollarsPerGiB +
				float64(devices)*m.SSDDeviceDollars,
		}
		adv.Candidates = append(adv.Candidates, cand)
		if best < 0 || cand.DollarCost < adv.Candidates[best].DollarCost {
			best = len(adv.Candidates) - 1
		}
	}
	if best >= 0 {
		adv.RecommendedBytes = adv.Candidates[best].RAMBytes
	}
	return adv
}

// Clamp bounds a tier size to [MinBytes, MaxBytes] (either 0 = unbounded
// on that side) and to whole blocks.
func (a *Advisor) Clamp(bytes int64) int64 {
	if a.MinBytes > 0 && bytes < a.MinBytes {
		bytes = a.MinBytes
	}
	if a.MaxBytes > 0 && bytes > a.MaxBytes {
		bytes = a.MaxBytes
	}
	return bytes - bytes%block.Size
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return 1
	}
	return (a + b - 1) / b
}
