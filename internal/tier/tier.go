// Package tier is the in-process RAM tier above the SSD cache: a small,
// highly-selective hot store holding copies of blocks that keep hitting
// in the SSD tier. The same selectivity argument the paper makes for the
// SSD applies one level up — a RAM tier a fraction of the SSD's size can
// absorb the hottest blocks and skip the SSD frame path (and its shard
// mutex) entirely.
//
// Admission is sieved: a block is promoted only after PromoteHits repeated
// SSD-tier hits observed by a small per-shard PromoFilter (the promotion
// sieve). Eviction is SIEVE (any cache.Policy, but SIEVE is the default
// and the point: lookups touch only an atomic per-entry visited bit, so
// the hot read path needs no exclusive lock at all). Demotion is a drop —
// the SSD copy is authoritative and tier frames are never dirty, so no
// data is ever lost.
//
// Concurrency: the cache is split into power-of-two key-hash shards, each
// guarded by a sync.RWMutex. Lookup and Pin take only the read lock plus
// one atomic visited store; Insert, Invalidate, Resize, and the release
// of a doomed pin take the write lock. The caller (core.Store) performs
// Insert and Invalidate while holding its own store-shard mutex, which
// linearizes tier membership changes with SSD frame updates; the tier
// lock is strictly a leaf below the store-shard lock.
package tier

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/block"
	"repro/internal/cache"
)

// DefaultPromoteHits is how many observed SSD-tier hits (within the
// promotion filter's memory) a block needs before it is promoted.
const DefaultPromoteHits = 2

// defaultFilterSlots sizes each PromoFilter's direct-mapped slot table.
const defaultFilterSlots = 1024

// Config configures a Cache.
type Config struct {
	// Bytes is the tier capacity; must be at least Shards blocks and is
	// rounded down to a whole number of blocks.
	Bytes int64
	// Shards is the shard count (power of two; 0 means 1). Matching the
	// store's shard count keeps tier contention no worse than the SSD
	// tier's.
	Shards int
	// Policy names the eviction engine (cache.PolicyNames; default
	// "sieve").
	Policy string
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Shards == 0 {
		out.Shards = 1
	}
	if out.Shards < 1 || out.Shards&(out.Shards-1) != 0 {
		return out, fmt.Errorf("tier: Shards %d must be a power of two", out.Shards)
	}
	if out.Policy == "" {
		out.Policy = "sieve"
	}
	if out.Bytes < int64(out.Shards)*block.Size {
		return out, fmt.Errorf("tier: Bytes %d below one block per shard (%d shards)", out.Bytes, out.Shards)
	}
	return out, nil
}

// Stats is a snapshot of the tier's counters. Hits/Pinned/Promotions/
// Demotions/Invalidations are cumulative; CachedBlocks, CapacityBlocks,
// and PinnedFrames are gauges.
type Stats struct {
	Hits           int64 // blocks served (Lookup or Pin)
	Pinned         int64 // of Hits, served zero-copy via Pin
	Misses         int64 // lookups that fell through to the SSD tier
	Promotions     int64 // blocks copied up from the SSD tier
	Demotions      int64 // blocks evicted back to SSD-resident-only
	Invalidations  int64 // blocks dropped because their data changed below
	Resizes        int64 // capacity changes applied (autotune or manual)
	CachedBlocks   int64
	CapacityBlocks int64
	PinnedFrames   int64 // tier frames currently lent out zero-copy
}

// entry is one resident tier block.
type entry struct {
	data []byte
	// visited is the SIEVE reference bit, settable under the shard's
	// *read* lock (hence atomic); the eviction sweep consumes it under
	// the write lock by replaying it into the policy as a touch.
	visited atomic.Bool
	// refs counts zero-copy pins. Incremented under the read lock
	// (concurrent pinners race, hence atomic); decremented under the
	// write lock by Pin.Release.
	refs atomic.Int32
	// doomed marks an entry evicted/invalidated while pinned: its data
	// is recycled by the last Release instead. Guarded by the write lock.
	doomed bool
}

// shard is one lock stripe of the tier.
type shard struct {
	mu        sync.RWMutex
	entries   map[block.Key]*entry
	tags      cache.Policy // eviction order; always in sync with entries
	capBlocks int
	free      [][]byte
}

// Cache is the RAM tier. Safe for concurrent use.
type Cache struct {
	cfg    Config
	shards []*shard
	mask   uint64

	hits          atomic.Int64
	pinned        atomic.Int64
	misses        atomic.Int64
	promotions    atomic.Int64
	demotions     atomic.Int64
	invalidations atomic.Int64
	resizes       atomic.Int64
}

// New returns a ready Cache.
func New(cfg Config) (*Cache, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	caps := cache.PartitionCapacity(int(c.Bytes/block.Size), c.Shards)
	t := &Cache{cfg: c, mask: uint64(c.Shards - 1)}
	t.shards = make([]*shard, c.Shards)
	for i := range t.shards {
		tags, err := cache.NewPolicy(c.Policy, caps[i])
		if err != nil {
			return nil, err
		}
		t.shards[i] = &shard{
			entries:   make(map[block.Key]*entry),
			tags:      tags,
			capBlocks: caps[i],
		}
	}
	return t, nil
}

// shardOf maps a key to its stripe with the same avalanche mix the store
// shards use — different shard counts keep the distributions independent.
func (t *Cache) shardOf(key block.Key) *shard {
	if t.mask == 0 {
		return t.shards[0]
	}
	x := uint64(key)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return t.shards[x&t.mask]
}

// Lookup copies the block into dst if resident, reporting whether it hit.
// Read-lock only: the SIEVE reference bit is an atomic store, so parallel
// readers never serialize on the tier.
func (t *Cache) Lookup(key block.Key, dst []byte) bool {
	sh := t.shardOf(key)
	sh.mu.RLock()
	e := sh.entries[key]
	if e == nil {
		sh.mu.RUnlock()
		t.misses.Add(1)
		return false
	}
	copy(dst, e.data)
	e.visited.Store(true)
	sh.mu.RUnlock()
	t.hits.Add(1)
	return true
}

// Contains reports residency without touching the reference bit.
func (t *Cache) Contains(key block.Key) bool {
	sh := t.shardOf(key)
	sh.mu.RLock()
	_, ok := sh.entries[key]
	sh.mu.RUnlock()
	return ok
}

// Pin is a zero-copy view of one tier frame, alive until Release.
type Pin struct {
	sh *shard
	e  *entry
}

// Pin returns the block's frame as an immutable zero-copy view, or ok
// false on a miss. The view stays valid (the frame is never mutated —
// invalidation dooms it instead) until Release is called exactly once.
func (t *Cache) Pin(key block.Key) (view []byte, p Pin, ok bool) {
	sh := t.shardOf(key)
	sh.mu.RLock()
	e := sh.entries[key]
	if e == nil {
		sh.mu.RUnlock()
		t.misses.Add(1)
		return nil, Pin{}, false
	}
	e.refs.Add(1)
	e.visited.Store(true)
	view = e.data
	sh.mu.RUnlock()
	t.hits.Add(1)
	t.pinned.Add(1)
	return view, Pin{sh: sh, e: e}, true
}

// Release drops the pin; the last release of a doomed frame recycles it.
func (p Pin) Release() {
	if p.e == nil {
		return
	}
	p.sh.mu.Lock()
	if p.e.refs.Add(-1) == 0 && p.e.doomed {
		p.sh.free = append(p.sh.free, p.e.data)
		p.e.data = nil
	}
	p.sh.mu.Unlock()
}

// Insert copies data into the tier, evicting per policy if full. The
// caller decides admission (see PromoFilter); Insert on a resident key
// just refreshes its reference bit. Counted as a promotion.
func (t *Cache) Insert(key block.Key, data []byte) {
	sh := t.shardOf(key)
	sh.mu.Lock()
	if e := sh.entries[key]; e != nil {
		e.visited.Store(true)
		sh.mu.Unlock()
		return
	}
	for len(sh.entries) >= sh.capBlocks {
		t.evictOneLocked(sh)
	}
	sh.tags.Insert(key)
	e := &entry{data: sh.alloc()}
	copy(e.data, data)
	sh.entries[key] = e
	sh.mu.Unlock()
	t.promotions.Add(1)
}

// evictOneLocked demotes one block chosen by the policy, replaying each
// candidate's atomic visited bit into the policy as a touch first
// (duplicate-Insert-is-Touch): SIEVE's second chance works even though
// hits never took the write lock. Terminates — each key's bit is consumed
// at most once per call.
func (t *Cache) evictOneLocked(sh *shard) {
	for {
		v, ok := sh.tags.Victim()
		if !ok {
			return
		}
		e := sh.entries[v]
		if e != nil && e.visited.Swap(false) {
			sh.tags.Insert(v) // touch: grant the second chance
			continue
		}
		sh.tags.Remove(v)
		if e != nil {
			sh.dropEntryLocked(v, e)
		}
		t.demotions.Add(1)
		return
	}
}

// dropEntryLocked removes an entry, recycling its frame unless pinned (a
// pinned frame is doomed and recycled by the last Release).
func (sh *shard) dropEntryLocked(key block.Key, e *entry) {
	delete(sh.entries, key)
	if e.refs.Load() > 0 {
		e.doomed = true
		return
	}
	sh.free = append(sh.free, e.data)
	e.data = nil
}

func (sh *shard) alloc() []byte {
	if n := len(sh.free); n > 0 {
		f := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return f
	}
	return make([]byte, block.Size)
}

// Invalidate drops the block if resident (its data changed in the tier
// below), reporting whether it was. The resident check is read-locked so
// the write path pays no exclusive tier lock for blocks the tier does not
// hold — the common case.
func (t *Cache) Invalidate(key block.Key) bool {
	sh := t.shardOf(key)
	sh.mu.RLock()
	_, ok := sh.entries[key]
	sh.mu.RUnlock()
	if !ok {
		return false
	}
	sh.mu.Lock()
	e := sh.entries[key]
	if e == nil { // raced another invalidation or an eviction
		sh.mu.Unlock()
		return false
	}
	sh.tags.Remove(key)
	sh.dropEntryLocked(key, e)
	sh.mu.Unlock()
	t.invalidations.Add(1)
	return true
}

// Clear drops every entry (snapshot load replaced the tier below
// wholesale). Counted as invalidations.
func (t *Cache) Clear() {
	for _, sh := range t.shards {
		sh.mu.Lock()
		n := len(sh.entries)
		keys := sh.tags.Keys()
		for _, k := range keys {
			sh.tags.Remove(k)
		}
		for k, e := range sh.entries {
			sh.dropEntryLocked(k, e)
		}
		sh.mu.Unlock()
		t.invalidations.Add(int64(n))
	}
}

// Resize changes the tier's capacity to totalBytes (clamped up to one
// block per shard), demoting the policy's coldest blocks if shrinking.
// Survivors keep their recency/visited state via the policy's lossless
// Swap.
func (t *Cache) Resize(totalBytes int64) error {
	blocks := int(totalBytes / block.Size)
	if blocks < len(t.shards) {
		blocks = len(t.shards)
	}
	caps := cache.PartitionCapacity(blocks, len(t.shards))
	changed := false
	for i, sh := range t.shards {
		sh.mu.Lock()
		if sh.capBlocks == caps[i] {
			sh.mu.Unlock()
			continue
		}
		newTags, err := cache.NewPolicy(t.cfg.Policy, caps[i])
		if err != nil {
			sh.mu.Unlock()
			return err
		}
		keys := sh.tags.Keys() // hottest-first per the Policy contract
		kept := keys
		if len(kept) > caps[i] {
			kept = keys[:caps[i]]
			for _, k := range keys[caps[i]:] {
				if e := sh.entries[k]; e != nil {
					sh.dropEntryLocked(k, e)
				}
				t.demotions.Add(1)
			}
		}
		newTags.Swap(kept)
		sh.tags = newTags
		sh.capBlocks = caps[i]
		// A shrink strands surplus free frames; let the GC take them.
		sh.free = nil
		changed = true
		sh.mu.Unlock()
	}
	if changed {
		t.resizes.Add(1)
	}
	return nil
}

// CapacityBytes returns the current tier capacity.
func (t *Cache) CapacityBytes() int64 {
	var n int64
	for _, sh := range t.shards {
		sh.mu.RLock()
		n += int64(sh.capBlocks)
		sh.mu.RUnlock()
	}
	return n * block.Size
}

// Stats snapshots the tier's counters. Gauges are read per shard under
// the read lock; cross-shard sums are momentary.
func (t *Cache) Stats() Stats {
	st := Stats{
		Hits:          t.hits.Load(),
		Pinned:        t.pinned.Load(),
		Misses:        t.misses.Load(),
		Promotions:    t.promotions.Load(),
		Demotions:     t.demotions.Load(),
		Invalidations: t.invalidations.Load(),
		Resizes:       t.resizes.Load(),
	}
	for _, sh := range t.shards {
		sh.mu.RLock()
		st.CachedBlocks += int64(len(sh.entries))
		st.CapacityBlocks += int64(sh.capBlocks)
		for _, e := range sh.entries {
			if e.refs.Load() > 0 {
				st.PinnedFrames++
			}
		}
		sh.mu.RUnlock()
	}
	return st
}

// PromoFilter is the promotion sieve: a small direct-mapped table of
// (key, hit count) slots. A block is promoted once its slot accumulates
// Need hits; slot conflicts reset the count, which is the filter's decay —
// only blocks hot enough to re-hit before being aliased out ever promote,
// the same "mass of cold blocks costs nothing" argument the paper's IMCT
// makes. Not safe for concurrent use: the owner (a core store shard)
// calls Hit under its own lock, so the filter adds zero locking to the
// SSD hit path.
type PromoFilter struct {
	slots []promoSlot
	need  int32
}

type promoSlot struct {
	key   block.Key
	count int32
	used  bool
}

// NewPromoFilter returns a filter requiring need hits (min 1) before
// promotion; slots <= 0 selects the default table size.
func NewPromoFilter(slots, need int) *PromoFilter {
	if slots <= 0 {
		slots = defaultFilterSlots
	}
	if need < 1 {
		need = 1
	}
	return &PromoFilter{slots: make([]promoSlot, slots), need: int32(need)}
}

// Hit records one SSD-tier hit for key and reports whether the block has
// now earned promotion (the slot resets so a re-promoted block must earn
// it again).
func (f *PromoFilter) Hit(key block.Key) bool {
	x := uint64(key)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	s := &f.slots[x%uint64(len(f.slots))]
	if !s.used || s.key != key {
		s.key, s.count, s.used = key, 0, true
	}
	s.count++
	if s.count < f.need {
		return false
	}
	s.count = 0
	return true
}
