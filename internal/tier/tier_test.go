package tier

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/block"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func blockData(b byte) []byte {
	d := make([]byte, block.Size)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Bytes: 0},
		{Bytes: block.Size, Shards: 3},
		{Bytes: block.Size, Shards: 2}, // below one block per shard
		{Bytes: 4 * block.Size, Policy: "no-such-policy"},
	}
	for _, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("New(%+v): want error", c)
		}
	}
	c := mustNew(t, Config{Bytes: 8 * block.Size, Shards: 4})
	if got := c.CapacityBytes(); got != 8*block.Size {
		t.Fatalf("CapacityBytes = %d, want %d", got, 8*block.Size)
	}
}

func TestLookupInsertInvalidate(t *testing.T) {
	c := mustNew(t, Config{Bytes: 8 * block.Size})
	k := block.MakeKey(0, 0, 7)
	dst := make([]byte, block.Size)
	if c.Lookup(k, dst) {
		t.Fatal("Lookup hit on empty tier")
	}
	c.Insert(k, blockData(0xAB))
	if !c.Contains(k) {
		t.Fatal("Contains false after Insert")
	}
	if !c.Lookup(k, dst) || !bytes.Equal(dst, blockData(0xAB)) {
		t.Fatal("Lookup after Insert: miss or wrong data")
	}
	// Duplicate insert refreshes, does not double-count residency.
	c.Insert(k, blockData(0xCD))
	st := c.Stats()
	if st.CachedBlocks != 1 || st.Promotions != 1 {
		t.Fatalf("after duplicate insert: cached=%d promotions=%d", st.CachedBlocks, st.Promotions)
	}
	if !c.Invalidate(k) {
		t.Fatal("Invalidate missed a resident block")
	}
	if c.Invalidate(k) {
		t.Fatal("Invalidate hit after removal")
	}
	st = c.Stats()
	if st.CachedBlocks != 0 || st.Invalidations != 1 {
		t.Fatalf("after invalidate: cached=%d invalidations=%d", st.CachedBlocks, st.Invalidations)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
}

// TestSieveSecondChance pins the eviction contract: a block whose atomic
// visited bit is set survives the sweep that would have demoted it (the
// bit is replayed into the policy as a touch), and an untouched block is
// demoted instead.
func TestSieveSecondChance(t *testing.T) {
	c := mustNew(t, Config{Bytes: 2 * block.Size})
	hot := block.MakeKey(0, 0, 1)
	cold := block.MakeKey(0, 0, 2)
	c.Insert(hot, blockData(1))
	c.Insert(cold, blockData(2))
	// Touch only hot: its visited bit is set under the read lock.
	dst := make([]byte, block.Size)
	if !c.Lookup(hot, dst) {
		t.Fatal("hot should be resident")
	}
	// Third insert must demote cold (hot's bit buys its second chance).
	c.Insert(block.MakeKey(0, 0, 3), blockData(3))
	if !c.Contains(hot) {
		t.Fatal("visited block was demoted")
	}
	if c.Contains(cold) {
		t.Fatal("unvisited block survived a full tier")
	}
	if st := c.Stats(); st.Demotions != 1 || st.CachedBlocks != 2 {
		t.Fatalf("demotions=%d cached=%d, want 1/2", st.Demotions, st.CachedBlocks)
	}
}

func TestPinZeroCopyAndDoom(t *testing.T) {
	c := mustNew(t, Config{Bytes: 2 * block.Size})
	k := block.MakeKey(0, 0, 9)
	c.Insert(k, blockData(0x5A))
	view, p, ok := c.Pin(k)
	if !ok || !bytes.Equal(view, blockData(0x5A)) {
		t.Fatal("Pin missed or returned wrong data")
	}
	if _, _, ok := c.Pin(block.MakeKey(0, 0, 10)); ok {
		t.Fatal("Pin hit a non-resident block")
	}
	if st := c.Stats(); st.PinnedFrames != 1 || st.Pinned != 1 {
		t.Fatalf("pinned gauge/counter = %d/%d, want 1/1", st.PinnedFrames, st.Pinned)
	}
	// Invalidate while pinned: the view must stay intact until Release.
	if !c.Invalidate(k) {
		t.Fatal("Invalidate missed the pinned block")
	}
	if !bytes.Equal(view, blockData(0x5A)) {
		t.Fatal("pinned view mutated by invalidation")
	}
	p.Release()
	if st := c.Stats(); st.PinnedFrames != 0 {
		t.Fatalf("PinnedFrames = %d after release", st.PinnedFrames)
	}
	// The doomed frame was recycled, not leaked: a new insert reuses it.
	c.Insert(k, blockData(0x11))
	dst := make([]byte, block.Size)
	if !c.Lookup(k, dst) || !bytes.Equal(dst, blockData(0x11)) {
		t.Fatal("reinsert after doomed release failed")
	}
	// Releasing a zero Pin is a no-op.
	Pin{}.Release()
}

func TestClear(t *testing.T) {
	c := mustNew(t, Config{Bytes: 8 * block.Size, Shards: 2})
	for i := 0; i < 6; i++ {
		c.Insert(block.MakeKey(0, 0, uint64(i)), blockData(byte(i)))
	}
	c.Clear()
	st := c.Stats()
	if st.CachedBlocks != 0 || st.Invalidations != 6 {
		t.Fatalf("after Clear: cached=%d invalidations=%d", st.CachedBlocks, st.Invalidations)
	}
	// The tier still works after a wholesale clear.
	c.Insert(block.MakeKey(0, 0, 99), blockData(9))
	if !c.Contains(block.MakeKey(0, 0, 99)) {
		t.Fatal("insert after Clear failed")
	}
}

func TestResize(t *testing.T) {
	c := mustNew(t, Config{Bytes: 8 * block.Size})
	for i := 0; i < 8; i++ {
		c.Insert(block.MakeKey(0, 0, uint64(i)), blockData(byte(i)))
	}
	// Shrink to 4 blocks: the policy's coldest half demotes, survivors
	// keep serving.
	if err := c.Resize(4 * block.Size); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.CapacityBlocks != 4 || st.CachedBlocks != 4 || st.Demotions != 4 || st.Resizes != 1 {
		t.Fatalf("after shrink: %+v", st)
	}
	dst := make([]byte, block.Size)
	kept := 0
	for i := 0; i < 8; i++ {
		if c.Lookup(block.MakeKey(0, 0, uint64(i)), dst) {
			if !bytes.Equal(dst, blockData(byte(i))) {
				t.Fatalf("block %d data corrupted by resize", i)
			}
			kept++
		}
	}
	if kept != 4 {
		t.Fatalf("kept %d blocks after shrink, want 4", kept)
	}
	// Grow back: capacity rises, nothing is lost.
	if err := c.Resize(16 * block.Size); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.CapacityBlocks != 16 || st.CachedBlocks != 4 {
		t.Fatalf("after grow: %+v", st)
	}
	// A same-size resize is a no-op (no Resizes tick).
	if err := c.Resize(16 * block.Size); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Resizes; got != 2 {
		t.Fatalf("Resizes = %d, want 2", got)
	}
	// Resize below one block per shard clamps, never errors.
	if err := c.Resize(0); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().CapacityBlocks; got != 1 {
		t.Fatalf("clamped capacity = %d, want 1", got)
	}
}

func TestResizeShrinkWhilePinned(t *testing.T) {
	c := mustNew(t, Config{Bytes: 4 * block.Size})
	keys := make([]block.Key, 4)
	for i := range keys {
		keys[i] = block.MakeKey(0, 0, uint64(i))
		c.Insert(keys[i], blockData(byte(i)))
	}
	views := make([][]byte, 0, 4)
	pins := make([]Pin, 0, 4)
	for _, k := range keys {
		v, p, ok := c.Pin(k)
		if !ok {
			t.Fatalf("pin %v missed", k)
		}
		views = append(views, v)
		pins = append(pins, p)
	}
	if err := c.Resize(block.Size); err != nil {
		t.Fatal(err)
	}
	for i, v := range views {
		if !bytes.Equal(v, blockData(byte(i))) {
			t.Fatalf("pinned view %d corrupted by shrink", i)
		}
		pins[i].Release()
	}
	if st := c.Stats(); st.PinnedFrames != 0 {
		t.Fatalf("PinnedFrames = %d after releases", st.PinnedFrames)
	}
}

func TestConcurrentLookupInsertInvalidate(t *testing.T) {
	c := mustNew(t, Config{Bytes: 64 * block.Size, Shards: 4})
	const span = 256
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			dst := make([]byte, block.Size)
			x := seed*2654435761 + 1
			for i := 0; i < 4000; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				k := block.MakeKey(0, 0, x%span)
				switch x % 5 {
				case 0:
					c.Insert(k, blockData(byte(x)))
				case 1:
					c.Invalidate(k)
				case 2:
					if v, p, ok := c.Pin(k); ok {
						_ = v[0]
						p.Release()
					}
				default:
					c.Lookup(k, dst)
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	st := c.Stats()
	if st.CachedBlocks > st.CapacityBlocks {
		t.Fatalf("residency %d exceeds capacity %d", st.CachedBlocks, st.CapacityBlocks)
	}
	if st.PinnedFrames != 0 {
		t.Fatalf("PinnedFrames = %d after all releases", st.PinnedFrames)
	}
}

func TestPromoFilter(t *testing.T) {
	f := NewPromoFilter(16, 2)
	k := block.MakeKey(0, 0, 1)
	if f.Hit(k) {
		t.Fatal("first hit promoted with need=2")
	}
	if !f.Hit(k) {
		t.Fatal("second hit did not promote")
	}
	// The slot reset: the block must earn promotion again.
	if f.Hit(k) {
		t.Fatal("slot did not reset after promotion")
	}
	// A conflicting key steals the slot and resets the count (the
	// filter's decay). Find a colliding key by brute force.
	var other block.Key
	for n := uint64(2); ; n++ {
		cand := block.MakeKey(0, 0, n)
		f2 := NewPromoFilter(16, 2)
		f2.Hit(k)
		f2.Hit(cand)
		if !f2.Hit(k) { // k lost its progress → cand aliased its slot
			other = cand
			break
		}
		if n > 10000 {
			t.Skip("no colliding key found in range")
		}
	}
	f3 := NewPromoFilter(16, 2)
	f3.Hit(k)
	f3.Hit(other)
	if f3.Hit(k) {
		t.Fatal("aliased slot kept stale progress")
	}
	// Defaults: need<1 clamps to 1 (promote on first hit), slots<=0 uses
	// the default table.
	g := NewPromoFilter(0, 0)
	if !g.Hit(k) {
		t.Fatal("need=1 filter should promote on first hit")
	}
}

func TestEvictionPinnedVictim(t *testing.T) {
	// A pinned block chosen as victim is demoted from the tier (its key
	// leaves) but its frame survives until Release.
	c := mustNew(t, Config{Bytes: 1 * block.Size})
	k := block.MakeKey(0, 0, 1)
	c.Insert(k, blockData(7))
	view, p, ok := c.Pin(k)
	if !ok {
		t.Fatal("pin missed")
	}
	c.Insert(block.MakeKey(0, 0, 2), blockData(8)) // evicts k (capacity 1)
	if c.Contains(k) {
		t.Fatal("victim still resident")
	}
	if !bytes.Equal(view, blockData(7)) {
		t.Fatal("pinned victim's view corrupted")
	}
	p.Release()
	dst := make([]byte, block.Size)
	if !c.Lookup(block.MakeKey(0, 0, 2), dst) || !bytes.Equal(dst, blockData(8)) {
		t.Fatal("replacement block wrong")
	}
}

func TestStatsString(t *testing.T) {
	// Smoke the zero-value formatting path used by logs.
	var st Stats
	if s := fmt.Sprintf("%+v", st); s == "" {
		t.Fatal("empty stats formatting")
	}
}
