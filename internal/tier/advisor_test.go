package tier

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/block"
	"repro/internal/ssd"
)

// flatModel uses round numbers so test arithmetic is checkable by hand:
// one SSD device serves 1000 ops/s derated, holds 1 GiB, costs $100; RAM
// costs $64/GiB (= $2^-24 per byte... irrelevant — just > 0).
func flatModel() CostModel {
	return CostModel{
		RAMDollarsPerGiB: 64,
		SSDDevice:        ssd.DeviceSpec{ReadIOPS: 1000, WriteIOPS: 1000},
		SSDDeviceBytes:   1 << 30,
		SSDDeviceDollars: 100,
		Imbalance:        1, // derated: exactly 1000 ops/s per device
	}
}

func TestAnalyzeSkewedDistribution(t *testing.T) {
	// 10 hot blocks at 1000 accesses each + 1000 cold blocks at 1 access,
	// over a 1-second epoch: total 11000 ops/s. With no RAM tier the array
	// needs ceil(11000/1000) = 11 devices (IOPS-bound; capacity needs only
	// 4). A tier holding just the 10 hot blocks absorbs 10000 ops/s,
	// leaving 1000 ops/s → 4 devices (capacity-bound) — the paper's
	// "tiny highly-selective tier collapses the IOPS term" effect.
	counts := make([]int64, 0, 1010)
	for i := 0; i < 10; i++ {
		counts = append(counts, 1000)
	}
	for i := 0; i < 1000; i++ {
		counts = append(counts, 1)
	}
	adv := Advisor{Model: flatModel(), SSDBytes: 4 << 30}
	a := adv.Analyze(counts, 1.0, 0)

	if a.TrackedKeys != 1010 || a.EpochSeconds != 1.0 || a.CurrentBytes != 0 {
		t.Fatalf("header fields: %+v", a)
	}
	// zero = the tierless candidate; one = the smallest non-zero rung
	// (~1% of the 4 GiB SSD tier — far more than the 1010 tracked blocks).
	var zero, one *Candidate
	for i := range a.Candidates {
		if a.Candidates[i].RAMBytes == 0 {
			zero = &a.Candidates[i]
		} else if one == nil || a.Candidates[i].RAMBytes < one.RAMBytes {
			one = &a.Candidates[i]
		}
	}
	if zero == nil || one == nil {
		t.Fatalf("candidate ladder missing 0%% or 1%%: %+v", a.Candidates)
	}
	if zero.SSDDevices != 11 {
		t.Fatalf("tierless devices = %d, want 11 (IOPS-bound)", zero.SSDDevices)
	}
	if math.Abs(zero.SSDIOPS-11000) > 1e-9 || zero.RAMHitsPerSec != 0 {
		t.Fatalf("tierless rates: %+v", zero)
	}
	// 40 MiB = 81920 blocks ≥ all 1010 tracked blocks: the tier absorbs
	// the whole tracked distribution, leaving the array capacity-bound.
	if one.SSDDevices != 4 {
		t.Fatalf("1%%-tier devices = %d, want 4 (capacity-bound)", one.SSDDevices)
	}
	if math.Abs(one.RAMHitsPerSec-11000) > 1e-9 {
		t.Fatalf("1%%-tier absorbed %v ops/s, want 11000", one.RAMHitsPerSec)
	}
	// Cost check: 0% costs 11·$100 = $1100; 1% costs 40MiB·$64/GiB + 4·$100
	// ≈ $402.5 — the tier pays for itself and must be the recommendation...
	// unless an even smaller non-zero candidate wins. Recommended must
	// beat the tierless cost and be a listed candidate.
	if a.RecommendedBytes == 0 {
		t.Fatalf("recommendation kept the 11-device array: %+v", a.Candidates)
	}
	var rec *Candidate
	for i := range a.Candidates {
		if a.Candidates[i].RAMBytes == a.RecommendedBytes {
			rec = &a.Candidates[i]
		}
	}
	if rec == nil || rec.DollarCost >= zero.DollarCost {
		t.Fatalf("recommended %d not cheaper than tierless: %+v", a.RecommendedBytes, rec)
	}
}

func TestAnalyzeFlatDistributionRecommendsZero(t *testing.T) {
	// A uniform trickle the capacity-bound array absorbs for free: any RAM
	// spent buys nothing, so the smallest (zero) size must win ties.
	counts := make([]int64, 100)
	for i := range counts {
		counts[i] = 1
	}
	adv := Advisor{Model: flatModel(), SSDBytes: 4 << 30}
	a := adv.Analyze(counts, 10.0, 0)
	if a.RecommendedBytes != 0 {
		t.Fatalf("flat distribution recommended %d bytes of RAM", a.RecommendedBytes)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	counts := []int64{5, 3, 8, 1, 9, 2, 7}
	adv := Advisor{Model: flatModel(), SSDBytes: 1 << 30}
	a1 := adv.Analyze(counts, 2.0, 10<<20)
	// Order-insensitive and counts not retained.
	rev := []int64{7, 2, 9, 1, 8, 3, 5}
	a2 := adv.Analyze(rev, 2.0, 10<<20)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("advice depends on count order:\n%+v\n%+v", a1, a2)
	}
	if _, err := json.Marshal(a1); err != nil {
		t.Fatalf("advice not JSON-marshalable: %v", err)
	}
}

func TestAnalyzeBounds(t *testing.T) {
	adv := Advisor{
		Model:    flatModel(),
		SSDBytes: 1 << 30,
		MinBytes: 8 << 20,
		MaxBytes: 64 << 20,
	}
	a := adv.Analyze([]int64{100, 100}, 1.0, 16<<20)
	for _, c := range a.Candidates {
		if c.RAMBytes != 0 && (c.RAMBytes < adv.MinBytes || c.RAMBytes > adv.MaxBytes) {
			t.Fatalf("candidate %d outside [%d,%d]", c.RAMBytes, adv.MinBytes, adv.MaxBytes)
		}
		if c.RAMBytes%block.Size != 0 {
			t.Fatalf("candidate %d not block-aligned", c.RAMBytes)
		}
	}
	// Current, min, and max sizes all appear in the sweep.
	want := map[int64]bool{16 << 20: false, 8 << 20: false, 64 << 20: false}
	for _, c := range a.Candidates {
		if _, ok := want[c.RAMBytes]; ok {
			want[c.RAMBytes] = true
		}
	}
	for b, ok := range want {
		if !ok {
			t.Fatalf("size %d missing from candidates %+v", b, a.Candidates)
		}
	}
}

func TestAnalyzeDegenerate(t *testing.T) {
	// No counts, nonsense epoch: still well-formed, recommends zero.
	adv := Advisor{Model: CostModel{}, SSDBytes: 32 << 30}
	a := adv.Analyze(nil, 0, 0)
	if a.RecommendedBytes != 0 || a.TrackedKeys != 0 || len(a.Candidates) == 0 {
		t.Fatalf("degenerate advice: %+v", a)
	}
	if a.EpochSeconds != 1 { // clamped
		t.Fatalf("EpochSeconds = %v, want clamp to 1", a.EpochSeconds)
	}
	// Defaulted model: X25-E spec, $400 devices, 32 GiB each → 1 device min.
	if a.Candidates[0].SSDDevices != 1 || a.Candidates[0].DollarCost != 400 {
		t.Fatalf("defaulted tierless candidate: %+v", a.Candidates[0])
	}
}

func TestClamp(t *testing.T) {
	a := Advisor{MinBytes: 4 * block.Size, MaxBytes: 10 * block.Size}
	cases := []struct{ in, want int64 }{
		{0, 4 * block.Size},
		{5 * block.Size, 5 * block.Size},
		{5*block.Size + 7, 5 * block.Size},
		{100 * block.Size, 10 * block.Size},
	}
	for _, c := range cases {
		if got := a.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	// Unbounded advisor only block-aligns.
	u := Advisor{}
	if got := u.Clamp(3*block.Size + 1); got != 3*block.Size {
		t.Errorf("unbounded Clamp = %d", got)
	}
}

func TestCeilDiv(t *testing.T) {
	if ceilDiv(10, 3) != 4 || ceilDiv(9, 3) != 3 || ceilDiv(1, 0) != 1 {
		t.Fatal("ceilDiv arithmetic")
	}
}
