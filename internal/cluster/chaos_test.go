package cluster

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/block"
)

// The cluster chaos suite: N=3, R=2 write-back over one shared
// ensemble, concurrent readers/writers, and a crash loop that kills and
// cold-restarts one node at a time mid-load. Verified invariants:
//
//   - zero lost acked writes — after the ring heals, every block reads
//     back a version ≥ the highest version whose write returned success;
//   - no stale reads past the version floor — every successful read
//     during the storm already satisfies that bound;
//   - automatic re-replication to full R — the run ends only when the
//     repair engine reports no under-replicated keys and empty handoff
//     queues, with no manual intervention.
//
// Ops may fail during a crash (unavailability is allowed); correctness
// is asserted on whatever succeeds. A write whose outcome is unknown
// (error: the data may or may not have reached a quorum) taints its
// block — from then on only the upper-bound check holds there, exactly
// like the single-store chaos harness.

const (
	clusterChaosBlocks  = 96
	clusterChaosWorkers = 6
)

// ccPattern fills a block with 8-byte (index, version) cells.
func ccPattern(buf []byte, idx int, version uint32) {
	for c := 0; c < block.Size/8; c++ {
		binary.LittleEndian.PutUint32(buf[c*8:], uint32(idx))
		binary.LittleEndian.PutUint32(buf[c*8+4:], version)
	}
}

// ccDecode verifies a uniform (idx, version) pattern and returns the
// version.
func ccDecode(idx int, buf []byte) (uint32, error) {
	if binary.LittleEndian.Uint32(buf[0:]) != uint32(idx) {
		return 0, errors.New("block content belongs to a different index")
	}
	version := binary.LittleEndian.Uint32(buf[4:])
	for c := 1; c < block.Size/8; c++ {
		if binary.LittleEndian.Uint32(buf[c*8:]) != uint32(idx) ||
			binary.LittleEndian.Uint32(buf[c*8+4:]) != version {
			return 0, errors.New("torn block: cells disagree")
		}
	}
	return version, nil
}

type ccBlock struct {
	attempted atomic.Uint32 // highest version a write was issued for
	floor     atomic.Uint32 // highest version whose write was acked
	tainted   atomic.Uint32 // writes with unknown outcome
}

func TestClusterChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is seconds long")
	}
	watchdog := time.AfterFunc(2*time.Minute, func() {
		panic("cluster chaos: run did not complete — deadlock suspected")
	})
	defer watchdog.Stop()

	be, nodes, cl := newTestRing(t, 3, Config{
		Replicas:        2,
		WriteQuorum:     1,
		WriteBack:       true,
		PlacementBlocks: 4,
		HandoffMax:      4096,
		ProbeEvery:      20 * time.Millisecond,
	})

	var blocks [clusterChaosBlocks]ccBlock
	var wrote, readOK, opErrs atomic.Int64

	// Prefill every block at version 1 while the ring is healthy. A third
	// of the blocks (idx%3 == 0) stay cold from here on — never
	// rewritten, so after a crash wipes a replica, only the background
	// re-replication sweep can restore them to full R (hinted handoff
	// only covers blocks written during the outage).
	{
		buf := make([]byte, block.Size)
		for idx := range blocks {
			ccPattern(buf, idx, 1)
			if err := cl.WriteAt(0, 0, buf, blockAt(uint64(idx))); err != nil {
				t.Fatalf("prefill block %d: %v", idx, err)
			}
			blocks[idx].attempted.Store(1)
			blocks[idx].floor.Store(1)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < clusterChaosWorkers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 9973))
			buf := make([]byte, block.Size)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Each worker owns a disjoint stride of blocks; reads and
				// writes stay inside it so version accounting needs no lock.
				idx := w + clusterChaosWorkers*rng.Intn(clusterChaosBlocks/clusterChaosWorkers)
				b := &blocks[idx]
				if idx%3 != 0 && i%4 == 0 {
					v := b.attempted.Load() + 1
					b.attempted.Store(v)
					ccPattern(buf, idx, v)
					if err := cl.WriteAt(0, 0, buf, blockAt(uint64(idx))); err != nil {
						b.tainted.Add(1)
						opErrs.Add(1)
					} else {
						b.floor.Store(v)
						wrote.Add(1)
					}
					continue
				}
				preFloor := b.floor.Load()
				preTaint := b.tainted.Load()
				if preFloor == 0 {
					continue
				}
				if err := cl.ReadAt(0, 0, buf, blockAt(uint64(idx))); err != nil {
					opErrs.Add(1)
					continue
				}
				v, err := ccDecode(idx, buf)
				if err != nil {
					t.Errorf("block %d: %v", idx, err)
					return
				}
				if preTaint == 0 && v < preFloor {
					t.Errorf("stale read: block %d version %d < floor %d", idx, v, preFloor)
					return
				}
				if ceil := b.attempted.Load(); v > ceil {
					t.Errorf("impossible read: block %d version %d > attempted %d", idx, v, ceil)
					return
				}
				readOK.Add(1)
			}
		}()
	}

	// The crash loop: kill one node, let the cluster run degraded, cold
	// restart it, let the repair engine reattach it, move to the next.
	crashRng := rand.New(rand.NewSource(42))
	crashDone := make(chan struct{})
	go func() {
		defer close(crashDone)
		for round := 0; round < 6; round++ {
			select {
			case <-stop:
				return
			default:
			}
			victim := nodes[crashRng.Intn(len(nodes))]
			victim.kill()
			time.Sleep(400 * time.Millisecond)
			victim.restart()
			time.Sleep(400 * time.Millisecond)
		}
	}()
	<-crashDone
	close(stop)
	wg.Wait()
	for _, n := range nodes {
		n.restart() // in case the loop exited with a node down
	}
	if t.Failed() {
		return
	}

	// Heal: the repair engine must reach full replication on its own.
	st := settle(t, cl, 30*time.Second)
	if wrote.Load() == 0 || readOK.Load() == 0 {
		t.Fatalf("load never got traction: %d writes, %d reads ok, %d errors",
			wrote.Load(), readOK.Load(), opErrs.Load())
	}
	downs := int64(0)
	for _, n := range st.Nodes {
		downs += n.Downs
	}
	if downs == 0 || st.Hinted == 0 || st.Probes == 0 {
		t.Fatalf("chaos did not exercise failover paths: %+v", st)
	}
	if st.Rebalanced == 0 {
		t.Fatal("no re-replication happened despite node crashes wiping acked replicas")
	}

	// Zero lost acked writes: every untainted block reads back ≥ floor.
	buf := make([]byte, block.Size)
	for idx := range blocks {
		b := &blocks[idx]
		if b.floor.Load() == 0 {
			continue
		}
		if err := cl.ReadAt(0, 0, buf, blockAt(uint64(idx))); err != nil {
			t.Errorf("post-heal read of block %d: %v", idx, err)
			continue
		}
		v, err := ccDecode(idx, buf)
		if err != nil {
			t.Errorf("post-heal block %d: %v", idx, err)
			continue
		}
		if b.tainted.Load() == 0 && v < b.floor.Load() {
			t.Errorf("lost acked write: block %d version %d < floor %d", idx, v, b.floor.Load())
		}
		if v > b.attempted.Load() {
			t.Errorf("block %d version %d > attempted %d", idx, v, b.attempted.Load())
		}
	}

	// And the ensemble itself converges after Flush.
	if err := cl.Flush(); err != nil {
		t.Fatalf("post-chaos flush: %v", err)
	}
	for idx := range blocks {
		b := &blocks[idx]
		if b.floor.Load() == 0 || b.tainted.Load() > 0 {
			continue
		}
		if err := be.ReadAt(0, 0, buf, blockAt(uint64(idx))); err != nil {
			t.Errorf("backend read of block %d: %v", idx, err)
			continue
		}
		v, err := ccDecode(idx, buf)
		if err != nil {
			t.Errorf("backend block %d: %v", idx, err)
			continue
		}
		if v < b.floor.Load() {
			t.Errorf("ensemble lost acked write: block %d version %d < floor %d", idx, v, b.floor.Load())
		}
	}
	t.Logf("chaos: %d writes acked, %d reads ok, %d op errors, %d downs, %d hinted, %d drained, %d rebalanced, %d sheds-level stale drops",
		wrote.Load(), readOK.Load(), opErrs.Load(), downs, st.Hinted, st.Drained, st.Rebalanced, st.StaleDropped)
}
