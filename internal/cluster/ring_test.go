package cluster

import "testing"

func ringOf(ids ...int) *ring { return newRing(ids) }

func TestRingReplicasDeterministicAndDistinct(t *testing.T) {
	r := ringOf(0, 1, 2, 3, 4)
	var scratch []int
	for g := uint64(0); g < 2000; g++ {
		first := append([]int(nil), r.replicas(g, 3, scratch)...)
		if len(first) != 3 {
			t.Fatalf("group %d: got %d replicas, want 3", g, len(first))
		}
		seen := map[int]bool{}
		for _, id := range first {
			if !r.has(id) {
				t.Fatalf("group %d: replica %d not a member", g, id)
			}
			if seen[id] {
				t.Fatalf("group %d: duplicate replica %d", g, id)
			}
			seen[id] = true
		}
		again := r.replicas(g, 3, scratch)
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("group %d: non-deterministic replica list %v vs %v", g, first, again)
			}
		}
	}
}

func TestRingClampsToMembership(t *testing.T) {
	r := ringOf(3, 7)
	got := r.replicas(42, 5, nil)
	if len(got) != 2 {
		t.Fatalf("want 2 replicas from a 2-node ring, got %v", got)
	}
}

func TestRingDistributionRoughlyUniform(t *testing.T) {
	r := ringOf(0, 1, 2, 3, 4)
	const groups = 20000
	primary := map[int]int{}
	var scratch []int
	for g := uint64(0); g < groups; g++ {
		scratch = r.replicas(g, 1, scratch)
		primary[scratch[0]]++
	}
	mean := groups / len(r.ids)
	for id, n := range primary {
		if n < mean*7/10 || n > mean*13/10 {
			t.Errorf("node %d owns %d of %d groups (mean %d): skewed placement", id, n, groups, mean)
		}
	}
}

// A join must only move groups onto the new node: every surviving owner
// was already an owner before.
func TestRingMinimalMovementOnJoin(t *testing.T) {
	old := ringOf(0, 1, 2, 3)
	grown := old.with(4)
	const groups = 5000
	changed := 0
	var a, b []int
	for g := uint64(0); g < groups; g++ {
		a = old.replicas(g, 2, a)
		b = grown.replicas(g, 2, b)
		moved := false
		for _, id := range b {
			if id == 4 {
				moved = true
				continue
			}
			if !containsInt(a, id) {
				t.Fatalf("group %d: owner %d appeared without a join (old %v new %v)", g, id, a, b)
			}
		}
		if moved {
			changed++
		}
	}
	// Expected movement is R/N' = 2/5 of groups; far more means the hash
	// is reshuffling wholesale.
	if frac := float64(changed) / groups; frac > 0.55 {
		t.Errorf("join moved %.0f%% of groups, want ≈40%%", frac*100)
	}
}

// A leave must only re-home the departed node's groups.
func TestRingMinimalMovementOnLeave(t *testing.T) {
	old := ringOf(0, 1, 2, 3, 4)
	shrunk := old.without(2)
	var a, b []int
	for g := uint64(0); g < 5000; g++ {
		a = old.replicas(g, 2, a)
		b = shrunk.replicas(g, 2, b)
		if containsInt(a, 2) {
			continue // this group legitimately re-homes
		}
		for i := range a {
			if b[i] != a[i] {
				t.Fatalf("group %d: owners changed %v → %v though node 2 owned nothing here", g, a, b)
			}
		}
	}
}

func TestRingVersionMonotonic(t *testing.T) {
	r := ringOf(0, 1)
	r2 := r.with(2)
	r3 := r2.without(0)
	if !(r.version < r2.version && r2.version < r3.version) {
		t.Fatalf("versions not monotonic: %d %d %d", r.version, r2.version, r3.version)
	}
	if r3.has(0) || !r3.has(2) {
		t.Fatalf("membership wrong after with/without: %+v", r3.ids)
	}
}
