package cluster

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/resilience"
)

func mkNode(t *testing.T) *node {
	t.Helper()
	return newNode(0, "test", nil, resilience.BreakerConfig{Threshold: 3, OpenFor: time.Second})
}

func key(n uint64) block.Key { return block.MakeKey(0, 0, n) }

// The queue keeps exactly one hint per key — the newest — so drain
// order per key is trivially the write order and replay cannot regress.
func TestHintReplaceInPlaceKeepsNewest(t *testing.T) {
	n := mkNode(t)
	if got := n.offerHint(key(1), []byte("v1"), 100); got != hintQueued {
		t.Fatalf("first offer: got %d, want queued", got)
	}
	if got := n.offerHint(key(1), []byte("v2"), 100); got != hintReplaced {
		t.Fatalf("second offer: got %d, want replaced", got)
	}
	if d := n.hintDepth(); d != 1 {
		t.Fatalf("depth %d after replace, want 1", d)
	}
	data, ok := n.takeHint(key(1))
	if !ok || !bytes.Equal(data, []byte("v2")) {
		t.Fatalf("takeHint = %q, %v; want newest v2", data, ok)
	}
}

func TestHintDrainOrderIsFIFOAcrossKeys(t *testing.T) {
	n := mkNode(t)
	for i := uint64(1); i <= 3; i++ {
		n.offerHint(key(i), []byte{byte(i)}, 100)
	}
	// Superseding key 2 must not reorder it.
	n.offerHint(key(2), []byte{22}, 100)
	var got []uint64
	for {
		k, ok := n.popDrainKey()
		if !ok {
			break
		}
		got = append(got, k.Number())
		n.confirmHint(k)
	}
	want := []uint64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestHintRequeuePutsKeyBackFirst(t *testing.T) {
	n := mkNode(t)
	n.offerHint(key(1), []byte{1}, 100)
	n.offerHint(key(2), []byte{2}, 100)
	k, _ := n.popDrainKey()
	n.requeue(k) // delivery failed
	k2, ok := n.popDrainKey()
	if !ok || k2 != k {
		t.Fatalf("after requeue popped %v, want %v again", k2, k)
	}
}

// The in-flight drain window: the entry stays visible (pendingHint) from
// pop until confirm, so reads keep excluding the key at this node while
// the delivery is on the wire.
func TestHintVisibleUntilConfirmed(t *testing.T) {
	n := mkNode(t)
	n.offerHint(key(9), []byte{9}, 100)
	k, _ := n.popDrainKey()
	if !n.pendingHint(k) {
		t.Fatal("hint invisible while delivery in flight")
	}
	n.confirmHint(k)
	if n.pendingHint(k) {
		t.Fatal("hint still pending after confirm")
	}
	if n.drains != 1 {
		t.Fatalf("drains = %d, want 1", n.drains)
	}
}

// At the bound the queue stops growing: further offers shed into the
// coarse span union and bump the shed counter, keeping handoff memory
// bounded no matter how long a node stays down.
func TestHintQueueBoundShedsIntoSpans(t *testing.T) {
	n := mkNode(t)
	const max = 4
	for i := uint64(0); i < 10; i++ {
		n.offerHint(key(i), []byte{byte(i)}, max)
	}
	if d := n.hintDepth(); d != max {
		t.Fatalf("depth %d, want bound %d", d, max)
	}
	n.mu.Lock()
	sheds := n.sheds
	n.mu.Unlock()
	if sheds != 6 {
		t.Fatalf("sheds = %d, want 6", sheds)
	}
	for i := uint64(max); i < 10; i++ {
		if !n.inShed(key(i)) {
			t.Fatalf("shed key %d not covered by span union", i)
		}
	}
	// Replacing a still-queued key works even at the bound.
	if got := n.offerHint(key(0), []byte{0xFF}, max); got != hintReplaced {
		t.Fatalf("replace at bound: got %d, want replaced", got)
	}
}

func TestShedSpanClearRespectsWidening(t *testing.T) {
	n := mkNode(t)
	n.addSpan(0, 0, 10, 20)
	snap := n.takeSpans()
	// A new shed widens the span before the heal finishes...
	n.addSpan(0, 0, 5, 8)
	n.clearSpan(volID{0, 0}, snap[volID{0, 0}])
	// ...so the clear must be a no-op and the widened span must survive.
	if !n.inShed(key(6)) {
		t.Fatal("widened shed span lost by a stale clear")
	}
}

// Integration: a down node's hints drain on recovery, duplicates are
// harmless, and the drained data is the newest version.
func TestHandoffDrainIdempotentOnRecovery(t *testing.T) {
	_, nodes, cl := newTestRing(t, 2, Config{Replicas: 2, WriteQuorum: 1, WriteBack: true, PlacementBlocks: 4})
	buf := make([]byte, block.Size)

	nodes[1].kill()
	for v := byte(1); v <= 3; v++ {
		for i := range buf {
			buf[i] = v
		}
		if err := cl.WriteAt(0, 0, buf, blockAt(7)); err != nil {
			t.Fatalf("write v%d with node down: %v", v, err)
		}
	}
	waitNodeState(t, cl, 1, "down", 5*time.Second)
	st := cl.ClusterStats()
	if st.Nodes[1].HintDepth != 1 {
		t.Fatalf("hint depth %d after 3 superseding writes, want 1", st.Nodes[1].HintDepth)
	}

	nodes[1].restart()
	settle(t, cl, 10*time.Second)

	// Duplicate delivery: re-queue the same (already delivered) bytes and
	// drain again — replaying a hint must be a harmless overwrite.
	topo := cl.topo.Load()
	for i := range buf {
		buf[i] = 3
	}
	topo.nodes[1].offerHint(block.MakeKey(0, 0, 7), append([]byte(nil), buf...), 100)
	settle(t, cl, 10*time.Second)

	// The recovered node must now serve the newest version: kill the
	// node that took the writes directly — the read's fall-through lands
	// on node 1.
	nodes[0].kill()
	got := make([]byte, block.Size)
	if err := cl.ReadAt(0, 0, got, blockAt(7)); err != nil {
		t.Fatalf("read from drained replica: %v", err)
	}
	for i, b := range got {
		if b != 3 {
			t.Fatalf("drained replica byte %d = %d, want newest version 3", i, b)
		}
	}
	nodes[0].restart()
}

// A long outage with a tiny queue: most hints shed, yet after recovery
// the heal + re-replication restore every block — bounded memory never
// costs correctness.
func TestHandoffShedHealRestoresAllBlocks(t *testing.T) {
	_, nodes, cl := newTestRing(t, 2, Config{
		Replicas: 2, WriteQuorum: 1, WriteBack: true, PlacementBlocks: 4, HandoffMax: 8,
	})
	const blocks = 64
	buf := make([]byte, block.Size)

	nodes[1].kill()
	for n := uint64(0); n < blocks; n++ {
		for i := range buf {
			buf[i] = byte(n + 1)
		}
		if err := cl.WriteAt(0, 0, buf, blockAt(n)); err != nil {
			t.Fatalf("write block %d: %v", n, err)
		}
	}
	st := cl.ClusterStats()
	if st.Nodes[1].HintDepth > 8 {
		t.Fatalf("hint depth %d exceeds bound 8", st.Nodes[1].HintDepth)
	}
	if st.Nodes[1].Sheds == 0 {
		t.Fatal("expected sheds with a tiny queue bound")
	}

	nodes[1].restart()
	settle(t, cl, 15*time.Second)

	nodes[0].kill()
	got := make([]byte, block.Size)
	for n := uint64(0); n < blocks; n++ {
		if err := cl.ReadAt(0, 0, got, blockAt(n)); err != nil {
			t.Fatalf("read block %d from healed replica: %v", n, err)
		}
		for i, b := range got {
			if b != byte(n+1) {
				t.Fatalf("block %d byte %d = %d, want %d after shed heal", n, i, b, byte(n+1))
			}
		}
	}
	nodes[0].restart()
}
