// Package cluster scales the appliance out to a replicated ring of
// cache nodes. A cluster.Client routes per-block over a rendezvous-hash
// ring, replicates every write to R nodes (W-of-R direct-ack quorum),
// falls reads through to the next replica when a node's circuit breaker
// is open, buffers writes for down replicas in hinted-handoff queues
// that drain idempotently on recovery, and rebalances in the background
// after join/leave — streaming only the affected keys. See DESIGN.md
// §13 for the invariants.
//
// The Client implements appliance.BlockStore, so an appliance.Server can
// front the whole ring as a protocol gateway (cmd/appliance
// -cluster-peers).
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/appliance"
	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/resilience"
)

var (
	// ErrAlignment rejects I/O that is not block-aligned: replication
	// bookkeeping (hints, dirty tracking, quorums) is per 512-byte
	// block, and partial-block merge across replicas is not defined.
	ErrAlignment = errors.New("cluster: offset and length must be multiples of the block size")
	// ErrNoReplica means no replica could serve a read: every owner was
	// down, breaker-open, or known not to hold the freshest copy. The
	// data is unavailable, never served stale.
	ErrNoReplica = errors.New("cluster: no eligible replica")
	// ErrWriteQuorum means fewer than WriteQuorum owners directly
	// acknowledged a write; the rest were buffered as hints.
	ErrWriteQuorum = errors.New("cluster: write quorum not reached")
	// ErrClosed rejects ops on a closed client.
	ErrClosed = errors.New("cluster: client closed")
	// ErrTooManyNodes bounds the ring (node acks are tracked in a 64-bit
	// set).
	ErrTooManyNodes = errors.New("cluster: at most 64 nodes")
	// ErrDrainStuck reports a Flush that could not empty the handoff
	// queues (a replica stayed unreachable).
	ErrDrainStuck = errors.New("cluster: handoff queues not drained")
)

// Config describes the ring.
type Config struct {
	// Nodes are the appliance addresses, in stable id order (required).
	Nodes []string
	// Replicas is R, how many nodes hold each block (default 2, clamped
	// to the node count).
	Replicas int
	// WriteQuorum is W, how many *direct* acknowledgements a write needs
	// to succeed — hinted deliveries never count (default 1, clamped to
	// Replicas).
	WriteQuorum int
	// WriteBack declares the nodes run write-back stores: dirty blocks
	// live only in node caches until Flush, so the client tracks per-key
	// acked-replica sets and re-replicates after failures. Leave false
	// for write-through nodes (the ensemble is always current; only
	// cache-staleness tracking is needed).
	WriteBack bool
	// PlacementBlocks is the placement-extent width in blocks: this many
	// consecutive blocks share a replica set, so contiguous I/O batches
	// to one node (default 128 = 64 KiB; must be a power of two).
	PlacementBlocks int
	// HandoffMax bounds each node's hint queue, in blocks; at the bound
	// hints are shed into the coarse shed-range union (default 4096).
	HandoffMax int
	// ProbeEvery paces the down-node prober and the repair sweep
	// (default 250 ms).
	ProbeEvery time.Duration
	// Dial configures every per-node appliance connection. Timeout
	// defaults to 2 s, MaxReconnects to 1 (the redial path is how a
	// restarted node is reattached), DialTimeout to 1 s.
	Dial appliance.DialOptions
	// Breaker configures every per-node health breaker (defaults:
	// Threshold 3, OpenFor 500 ms).
	Breaker resilience.BreakerConfig
}

func (cfg Config) withDefaults() Config {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Nodes) {
		cfg.Replicas = len(cfg.Nodes)
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = 1
	}
	if cfg.WriteQuorum > cfg.Replicas {
		cfg.WriteQuorum = cfg.Replicas
	}
	if cfg.PlacementBlocks <= 0 {
		cfg.PlacementBlocks = 128
	}
	if cfg.HandoffMax <= 0 {
		cfg.HandoffMax = 4096
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 250 * time.Millisecond
	}
	if cfg.Dial.Timeout <= 0 {
		cfg.Dial.Timeout = 2 * time.Second
	}
	if cfg.Dial.DialTimeout <= 0 {
		cfg.Dial.DialTimeout = time.Second
	}
	if cfg.Dial.MaxReconnects <= 0 {
		cfg.Dial.MaxReconnects = 1
	}
	if cfg.Dial.ReconnectBackoff <= 0 {
		cfg.Dial.ReconnectBackoff = 10 * time.Millisecond
	}
	if cfg.Breaker.Threshold == 0 {
		cfg.Breaker.Threshold = 3
	}
	if cfg.Breaker.OpenFor <= 0 {
		cfg.Breaker.OpenFor = 500 * time.Millisecond
	}
	return cfg
}

// topology is an immutable (ring, nodes) snapshot, swapped atomically on
// join/leave so the block-routing hot path never locks.
type topology struct {
	ring  *ring
	nodes []*node // indexed by id; removed nodes keep their slot
}

// nStripes is the dirty-map / write-serialization stripe count.
const nStripes = 64

// stripe serializes all replication bookkeeping for the keys hashing to
// it: direct write fan-out, hint enqueue/supersede, hint drain, and
// re-replication of a key all run under its mutex.
type stripe struct {
	mu    sync.Mutex
	dirty map[block.Key]*dirtyEntry
}

// dirtyEntry tracks, for one write-back-dirty key, which nodes (bit =
// node id) are known to hold its freshest data. A node ack — direct
// write, drained hint, or re-replication copy — sets its bit; going
// down, missing a write, or shedding its hint clears it. A read may use
// a node for a dirty key only if its bit is set.
type dirtyEntry struct {
	acked uint64
}

// Client is the cluster-aware block client.
type Client struct {
	cfg     Config
	shift   uint // log2(PlacementBlocks)
	topoMu  sync.Mutex
	topo    atomic.Pointer[topology]
	stripes [nStripes]stripe

	closed   atomic.Bool
	stop     chan struct{}
	kick     chan struct{}
	wg       sync.WaitGroup
	repairMu sync.Mutex // serializes repairPass (loop vs Flush's inline drain)

	// Scrape-time snapshot cache; see refreshSnap.
	snapMu sync.Mutex
	snap   ClusterStats

	// Counters (see ClusterStats for meanings).
	reads          atomic.Int64
	writes         atomic.Int64
	readBlocks     atomic.Int64
	writeBlocks    atomic.Int64
	fallthroughs   atomic.Int64
	quorumFailures atomic.Int64
	hinted         atomic.Int64
	drained        atomic.Int64
	rebalanced     atomic.Int64
	staleDropped   atomic.Int64
	probes         atomic.Int64
}

// New dials every node and starts the background prober/repair
// goroutine. All nodes must be dialable at construction; nodes that die
// later are handled by failover.
func New(cfg Config) (*Client, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	if len(cfg.Nodes) > 64 {
		return nil, ErrTooManyNodes
	}
	cfg = cfg.withDefaults()
	if cfg.PlacementBlocks&(cfg.PlacementBlocks-1) != 0 {
		return nil, fmt.Errorf("cluster: PlacementBlocks %d is not a power of two", cfg.PlacementBlocks)
	}
	c := &Client{
		cfg:  cfg,
		stop: make(chan struct{}),
		kick: make(chan struct{}, 1),
	}
	for p := cfg.PlacementBlocks; p > 1; p >>= 1 {
		c.shift++
	}
	for i := range c.stripes {
		c.stripes[i].dirty = make(map[block.Key]*dirtyEntry)
	}
	nodes := make([]*node, 0, len(cfg.Nodes))
	ids := make([]int, 0, len(cfg.Nodes))
	for i, addr := range cfg.Nodes {
		cl, err := appliance.DialWith(addr, cfg.Dial)
		if err != nil {
			for _, n := range nodes {
				n.cl.Close()
			}
			return nil, fmt.Errorf("cluster: dial node %d (%s): %w", i, addr, err)
		}
		nodes = append(nodes, newNode(i, addr, cl, cfg.Breaker))
		ids = append(ids, i)
	}
	c.topo.Store(&topology{ring: newRing(ids), nodes: nodes})
	c.wg.Add(1)
	go c.repairLoop()
	return c, nil
}

// Close stops the repair goroutine and closes every node connection.
// Pending hints are lost — call Flush first to make the ensemble
// current.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(c.stop)
	c.wg.Wait()
	for _, n := range c.topo.Load().nodes {
		n.cl.Close()
	}
	return nil
}

// kickRepair nudges the repair goroutine without blocking.
func (c *Client) kickRepair() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// group maps a key to its placement group: PlacementBlocks consecutive
// blocks of one volume share a replica set.
func (c *Client) group(k block.Key) uint64 { return uint64(k) >> c.shift }

func stripeIdx(k block.Key) int { return int(mix64(uint64(k)) % nStripes) }

// blockRef is one 512-byte block of an op: its key and its slice of the
// caller's buffer. seg tells contiguous refs from the same source extent
// apart, so batching may merge adjacent blocks' slices.
type blockRef struct {
	key  block.Key
	data []byte
	seg  int
}

// appendRefs splits one extent into per-block refs.
func appendRefs(refs []blockRef, server, volume int, p []byte, off uint64, seg int) ([]blockRef, error) {
	if server < 0 || server >= block.MaxServers || volume < 0 || volume >= block.MaxVolumes {
		return nil, fmt.Errorf("cluster: server %d / volume %d out of range", server, volume)
	}
	if len(p) == 0 || off%block.Size != 0 || len(p)%block.Size != 0 {
		return nil, ErrAlignment
	}
	n0 := off / block.Size
	count := uint64(len(p) / block.Size)
	if n0+count > block.MaxBlockNumber {
		return nil, fmt.Errorf("cluster: block range [%d,%d) out of range", n0, n0+count)
	}
	for i := uint64(0); i < count; i++ {
		refs = append(refs, blockRef{
			key:  block.MakeKey(server, volume, n0+i),
			data: p[i*block.Size : (i+1)*block.Size],
			seg:  seg,
		})
	}
	return refs, nil
}

// lockStripes locks every stripe the refs touch, in ascending index
// order (deadlock-free against any other multi-stripe holder), and
// returns the unlock.
func (c *Client) lockStripes(refs []blockRef) func() {
	var touched [nStripes]bool
	for _, r := range refs {
		touched[stripeIdx(r.key)] = true
	}
	for i := 0; i < nStripes; i++ {
		if touched[i] {
			c.stripes[i].mu.Lock()
		}
	}
	return func() {
		for i := nStripes - 1; i >= 0; i-- {
			if touched[i] {
				c.stripes[i].mu.Unlock()
			}
		}
	}
}

// ackedBit reports whether node id is known to hold key's freshest
// write-back data. Keys with no dirty entry are clean: the ensemble
// backend is current and any replica may serve them (modulo hints and
// shed ranges). Caller need not hold the stripe lock for reads — a
// racing write makes either answer correct.
func (c *Client) ackedBit(k block.Key, id int) bool {
	if !c.cfg.WriteBack {
		return true
	}
	s := &c.stripes[stripeIdx(k)]
	s.mu.Lock()
	e := s.dirty[k]
	ok := e == nil || e.acked&(1<<uint(id)) != 0
	s.mu.Unlock()
	return ok
}

// markAcked sets/clears node id's bit for key. Caller holds key's
// stripe lock. Only meaningful in write-back mode.
func (c *Client) markAcked(k block.Key, id int, holds bool) {
	if !c.cfg.WriteBack {
		return
	}
	s := &c.stripes[stripeIdx(k)]
	e := s.dirty[k]
	if e == nil {
		e = &dirtyEntry{}
		s.dirty[k] = e
	}
	if holds {
		e.acked |= 1 << uint(id)
	} else {
		e.acked &^= 1 << uint(id)
	}
}

// ownersFor computes key's replica preference list into out.
func (t *topology) ownersFor(c *Client, k block.Key, out []int) []int {
	return t.ring.replicas(c.group(k), c.cfg.Replicas, out)
}

// --- appliance.BlockStore surface -----------------------------------

// ReadAt reads len(p) bytes at off; see readRefs for replica selection.
func (c *Client) ReadAt(server, volume int, p []byte, off uint64) error {
	refs, err := appendRefs(nil, server, volume, p, off, 0)
	if err != nil {
		return err
	}
	c.reads.Add(1)
	return c.readRefs(refs)
}

// WriteAt replicates p to the key range's owners; see writeRefs.
func (c *Client) WriteAt(server, volume int, p []byte, off uint64) error {
	refs, err := appendRefs(nil, server, volume, p, off, 0)
	if err != nil {
		return err
	}
	c.writes.Add(1)
	return c.writeRefs(refs)
}

// ReadVec serves a scatter/gather read (the gateway server's OpReadV).
func (c *Client) ReadVec(vecs []core.IOVec) error {
	var refs []blockRef
	var err error
	for i, v := range vecs {
		if refs, err = appendRefs(refs, v.Server, v.Volume, v.P, v.Off, i); err != nil {
			return err
		}
	}
	c.reads.Add(1)
	return c.readRefs(refs)
}

// WriteVec serves a scatter/gather write (the gateway server's OpWriteV).
func (c *Client) WriteVec(vecs []core.IOVec) error {
	var refs []blockRef
	var err error
	for i, v := range vecs {
		if refs, err = appendRefs(refs, v.Server, v.Volume, v.P, v.Off, i); err != nil {
			return err
		}
	}
	c.writes.Add(1)
	return c.writeRefs(refs)
}

// ReadBatch mirrors appliance.Client.ReadBatch over the ring.
func (c *Client) ReadBatch(exts []appliance.Extent) error {
	var refs []blockRef
	var err error
	for i, e := range exts {
		if refs, err = appendRefs(refs, e.Server, e.Volume, e.Data, e.Off, i); err != nil {
			return err
		}
	}
	c.reads.Add(1)
	return c.readRefs(refs)
}

// WriteBatch mirrors appliance.Client.WriteBatch over the ring.
func (c *Client) WriteBatch(exts []appliance.Extent) error {
	var refs []blockRef
	var err error
	for i, e := range exts {
		if refs, err = appendRefs(refs, e.Server, e.Volume, e.Data, e.Off, i); err != nil {
			return err
		}
	}
	c.writes.Add(1)
	return c.writeRefs(refs)
}

// ReadPinned always declines: zero-copy pinned reads are a single-store
// optimization; the gateway server falls back to ReadAt.
func (c *Client) ReadPinned(server, volume, n int, off uint64) *core.PinnedRead {
	return nil
}

// RotateEpoch broadcasts an epoch rotation to every serving node.
func (c *Client) RotateEpoch() error {
	return c.broadcast(func(n *node) error { return n.cl.RotateEpoch() })
}

// Invalidate drops cached copies of the range ring-wide. Unreachable
// nodes get the range recorded as a shed span — excluded from reads
// until the heal invalidates it on the node — so a stale cached copy
// can never resurface after recovery. Returns the maximum per-node
// dropped count (replicas hold duplicates; a sum would double-count).
func (c *Client) Invalidate(server, volume int, off uint64, length int) (int, error) {
	if c.closed.Load() {
		return 0, ErrClosed
	}
	if length <= 0 {
		return 0, nil
	}
	topo := c.topo.Load()
	lo := off / block.Size
	hi := (off + uint64(length) - 1) / block.Size
	// Drop client-side bookkeeping for the range first: pending hints
	// would re-deliver invalidated data, and dirty entries no longer
	// describe live cache state.
	c.invalidateLocal(topo, server, volume, lo, hi)
	max := 0
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, n := range topo.nodes {
		n := n
		if n.getState() == nodeRemoved {
			continue
		}
		if !n.serving() {
			n.addSpan(server, volume, lo, hi)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			dropped, err := n.cl.Invalidate(server, volume, off, length)
			c.recordResult(n, err)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				// Could not reach it after all: exclude the range there
				// until the heal retries.
				n.addSpan(server, volume, lo, hi)
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if dropped > max {
				max = dropped
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		c.kickRepair()
	}
	return max, firstErr
}

// invalidateLocal drops hints and dirty entries covering blocks
// [lo,hi] of (server,volume).
func (c *Client) invalidateLocal(topo *topology, server, volume int, lo, hi uint64) {
	for num := lo; num <= hi; num++ {
		k := block.MakeKey(server, volume, num)
		s := &c.stripes[stripeIdx(k)]
		s.mu.Lock()
		delete(s.dirty, k)
		for _, n := range topo.nodes {
			n.dropHint(k)
		}
		s.mu.Unlock()
	}
}

// Flush makes the ensemble current: drain every handoff queue (a
// pending hint may hold a block's only fresh copy), then broadcast
// Flush to the serving nodes, then retire the dirty entries that are
// now clean.
func (c *Client) Flush() error {
	if c.closed.Load() {
		return ErrClosed
	}
	// Drain first. Bounded: a queue for a persistently-down node cannot
	// empty, and Flush must not hang forever on it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		topo := c.topo.Load()
		depth := 0
		for _, n := range topo.nodes {
			if n.getState() != nodeRemoved {
				depth += n.hintDepth()
			}
		}
		if depth == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: %d hints pending", ErrDrainStuck, depth)
		}
		c.repairPass()
		if c.closed.Load() {
			return ErrClosed
		}
		time.Sleep(10 * time.Millisecond)
	}
	flushed := uint64(0)
	err := c.broadcastCollect(func(n *node) error { return n.cl.Flush() }, &flushed)
	if err != nil {
		return err
	}
	// Every serving node flushed: any dirty key with a flushed holder is
	// now durable on the ensemble.
	if c.cfg.WriteBack {
		for i := range c.stripes {
			s := &c.stripes[i]
			s.mu.Lock()
			for k, e := range s.dirty {
				if e.acked&flushed != 0 {
					delete(s.dirty, k)
				}
			}
			s.mu.Unlock()
		}
	}
	return nil
}

// Stats aggregates the serving nodes' store counters — the gateway's
// OpStats answer. Gauges (capacity, cached, dirty) sum across nodes;
// unreachable nodes contribute nothing.
func (c *Client) Stats() core.Stats {
	var agg core.Stats
	topo := c.topo.Load()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, n := range topo.nodes {
		n := n
		if !n.serving() {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := n.cl.Stats()
			c.recordResult(n, err)
			if err != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			agg.Reads += st.Reads
			agg.Writes += st.Writes
			agg.ReadHits += st.ReadHits
			agg.WriteHits += st.WriteHits
			agg.AllocWrites += st.AllocWrites
			agg.Evictions += st.Evictions
			agg.BackendReads += st.BackendReads
			agg.BackendWrites += st.BackendWrites
			agg.FlushWrites += st.FlushWrites
			agg.CachedBlocks += st.CachedBlocks
			agg.CapacityBlocks += st.CapacityBlocks
			agg.DirtyBlocks += st.DirtyBlocks
		}()
	}
	wg.Wait()
	return agg
}

// broadcast runs op against every serving node in parallel and returns
// the first error.
func (c *Client) broadcast(op func(n *node) error) error {
	return c.broadcastCollect(op, nil)
}

// broadcastCollect is broadcast plus an optional bitmask of the node
// ids whose op succeeded.
func (c *Client) broadcastCollect(op func(n *node) error, okMask *uint64) error {
	if c.closed.Load() {
		return ErrClosed
	}
	topo := c.topo.Load()
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for _, n := range topo.nodes {
		n := n
		if !n.serving() {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := op(n)
			c.recordResult(n, err)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if okMask != nil {
				*okMask |= 1 << uint(n.id)
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// recordResult feeds an op outcome into the node's breaker and demotes
// the node when the breaker trips: a tripped node is assumed to have
// lost its cache (the conservative reading of "unreachable"), so its
// acked bits are queued for wiping before it may serve again.
func (c *Client) recordResult(n *node, err error) {
	n.br.Record(err)
	if err == nil || !n.br.Open() {
		return
	}
	n.mu.Lock()
	wasUp := n.state == nodeUp
	if wasUp {
		n.state = nodeDown
		n.downs++
		n.demotePending.Store(true)
	}
	n.mu.Unlock()
	if wasUp {
		c.kickRepair()
	}
}
