// Per-node state: the appliance connection, the health breaker, and the
// hinted-handoff queue that buffers per-block deliveries while the node
// is unreachable.
//
// Lock order (cluster-wide): stripe.mu → node.mu. node.mu is never held
// across network I/O.
package cluster

import (
	"sync"
	"sync/atomic"

	"repro/internal/appliance"
	"repro/internal/block"
	"repro/internal/resilience"
)

// Node lifecycle states.
const (
	nodeUp      = iota // serving; direct reads and writes route here
	nodeDown           // unreachable; writes buffer as hints, reads fall through
	nodeRemoved        // administratively left the ring
)

func stateName(s int32) string {
	switch s {
	case nodeUp:
		return "up"
	case nodeDown:
		return "down"
	default:
		return "removed"
	}
}

// volID names one volume of the ensemble.
type volID struct{ server, volume int }

// span is a coarse inclusive block-number range, the overflow record for
// hints shed at the queue bound: the union is cheap to keep and to
// invalidate wholesale on recovery, at the cost of over-invalidating.
type span struct{ lo, hi uint64 }

// hintOp is what the queue holds per block: fresh data to deliver, or —
// data == nil — an invalidation the node missed.
type hintOp struct {
	data []byte
}

// node is one appliance in the ring.
type node struct {
	id   int
	addr string
	cl   *appliance.Client
	br   *resilience.Breaker

	// demotePending is set when the node goes down and cleared after the
	// repair goroutine has wiped its acked bits from the dirty map; the
	// node may not come back up in between (a restarted node's cache is
	// assumed lost until re-replication proves otherwise).
	demotePending atomic.Bool

	mu      sync.Mutex
	state   int32
	healing bool // up, but handoff/shed/re-replication not yet settled

	hints     map[block.Key]*hintOp
	order     []block.Key // FIFO of keys awaiting drain (lazily compacted)
	shedSpans map[volID]span

	sheds  int64 // hint offers dropped at the queue bound
	downs  int64 // up → down transitions
	ups    int64 // down → up transitions
	drains int64 // hints delivered
}

func newNode(id int, addr string, cl *appliance.Client, br resilience.BreakerConfig) *node {
	return &node{
		id:        id,
		addr:      addr,
		cl:        cl,
		br:        resilience.NewBreaker(br),
		hints:     make(map[block.Key]*hintOp),
		shedSpans: make(map[volID]span),
	}
}

func (n *node) getState() int32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// serving reports whether direct I/O may route to this node right now.
func (n *node) serving() bool {
	return n.getState() == nodeUp && !n.br.Open()
}

// Hint-offer outcomes.
const (
	hintQueued   = iota // appended to the queue
	hintReplaced        // superseded an older pending hint in place
	hintShed            // dropped at the bound; recorded in the shed spans
)

// offerHint buffers data (nil = invalidate) for later delivery of key.
// An existing entry is replaced in place — the queue holds at most one,
// newest, hint per key, which is what makes drain order per key trivial
// and replay idempotent. At the bound the hint is shed: the key's range
// joins the coarse shed union and the caller must treat the node as not
// holding the block.
func (n *node) offerHint(key block.Key, data []byte, max int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h, ok := n.hints[key]; ok {
		h.data = data
		return hintReplaced
	}
	if max > 0 && len(n.hints) >= max {
		n.sheds++
		n.addSpanLocked(key)
		return hintShed
	}
	n.hints[key] = &hintOp{data: data}
	n.order = append(n.order, key)
	return hintQueued
}

// dropHint removes a pending hint made obsolete by a successful direct
// write of newer data. Caller holds the key's stripe lock.
func (n *node) dropHint(key block.Key) {
	n.mu.Lock()
	delete(n.hints, key)
	n.mu.Unlock()
}

// pendingHint reports whether a delivery for key is still outstanding —
// while true, the node must not serve reads for the key.
func (n *node) pendingHint(key block.Key) bool {
	n.mu.Lock()
	_, ok := n.hints[key]
	n.mu.Unlock()
	return ok
}

// popDrainKey removes and returns the oldest key with a pending hint.
// The hint entry itself stays in the map until the drain confirms
// delivery (or finds it superseded) — reads keep excluding the key at
// this node for the whole in-flight window.
func (n *node) popDrainKey() (block.Key, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for len(n.order) > 0 {
		k := n.order[0]
		n.order = n.order[1:]
		if _, ok := n.hints[k]; ok {
			return k, true
		}
	}
	return 0, false
}

// requeue puts a popped key back at the queue front after a failed
// delivery.
func (n *node) requeue(key block.Key) {
	n.mu.Lock()
	if _, ok := n.hints[key]; ok {
		n.order = append([]block.Key{key}, n.order...)
	}
	n.mu.Unlock()
}

// takeHint reads the pending hint for a popped key. Caller holds the
// key's stripe lock, so the entry cannot be superseded or dropped
// concurrently.
func (n *node) takeHint(key block.Key) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hints[key]
	if !ok {
		return nil, false
	}
	return h.data, true
}

// confirmHint removes the entry after successful delivery.
func (n *node) confirmHint(key block.Key) {
	n.mu.Lock()
	delete(n.hints, key)
	n.drains++
	n.mu.Unlock()
}

func (n *node) hintDepth() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.hints)
}

// addSpanLocked widens the node's shed union to cover key.
func (n *node) addSpanLocked(key block.Key) {
	v := volID{key.Server(), key.Volume()}
	num := key.Number()
	s, ok := n.shedSpans[v]
	if !ok {
		n.shedSpans[v] = span{num, num}
		return
	}
	if num < s.lo {
		s.lo = num
	}
	if num > s.hi {
		s.hi = num
	}
	n.shedSpans[v] = s
}

// addSpan records an unreachable-node invalidation as a shed range: the
// blocks are excluded from reads here until the heal invalidates them on
// the node.
func (n *node) addSpan(server, volume int, lo, hi uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v := volID{server, volume}
	s, ok := n.shedSpans[v]
	if !ok {
		n.shedSpans[v] = span{lo, hi}
		return
	}
	if lo < s.lo {
		s.lo = lo
	}
	if hi > s.hi {
		s.hi = hi
	}
	n.shedSpans[v] = s
}

// inShed reports whether key sits in the node's shed union — such blocks
// may be arbitrarily stale in the node's cache and must not serve reads.
func (n *node) inShed(key block.Key) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.shedSpans) == 0 {
		return false
	}
	s, ok := n.shedSpans[volID{key.Server(), key.Volume()}]
	if !ok {
		return false
	}
	num := key.Number()
	return num >= s.lo && num <= s.hi
}

// takeSpans snapshots the shed union for healing. Spans are only removed
// by clearSpan after the on-node invalidation succeeded; until then they
// keep excluding reads.
func (n *node) takeSpans() map[volID]span {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[volID]span, len(n.shedSpans))
	for v, s := range n.shedSpans {
		out[v] = s
	}
	return out
}

// clearSpan removes a healed span — unless new sheds widened it
// meanwhile, in which case the widened remainder stays for the next
// pass.
func (n *node) clearSpan(v volID, healed span) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.shedSpans[v]
	if !ok {
		return
	}
	if s == healed {
		delete(n.shedSpans, v)
	}
}

func (n *node) spanCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.shedSpans)
}
