package cluster

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/block"
)

func fillByte(p []byte, b byte) {
	for i := range p {
		p[i] = b
	}
}

func TestClusterReadWriteRoundTrip(t *testing.T) {
	_, _, cl := newTestRing(t, 3, Config{Replicas: 2, PlacementBlocks: 4})
	const span = 16 * block.Size
	wr := make([]byte, span)
	for i := range wr {
		wr[i] = byte(i*7 + 3)
	}
	if err := cl.WriteAt(0, 0, wr, blockAt(32)); err != nil {
		t.Fatal(err)
	}
	rd := make([]byte, span)
	if err := cl.ReadAt(0, 0, rd, blockAt(32)); err != nil {
		t.Fatal(err)
	}
	for i := range wr {
		if rd[i] != wr[i] {
			t.Fatalf("byte %d: got %d want %d", i, rd[i], wr[i])
		}
	}
	st := cl.ClusterStats()
	if st.Writes != 1 || st.Reads != 1 || st.WriteBlocks != 16 || st.ReadBlocks != 16 {
		t.Fatalf("counters off: %+v", st)
	}
}

func TestClusterAlignmentRejected(t *testing.T) {
	_, _, cl := newTestRing(t, 2, Config{Replicas: 2})
	buf := make([]byte, block.Size)
	if err := cl.WriteAt(0, 0, buf, 100); !errors.Is(err, ErrAlignment) {
		t.Fatalf("unaligned offset: got %v, want ErrAlignment", err)
	}
	if err := cl.ReadAt(0, 0, buf[:100], 0); !errors.Is(err, ErrAlignment) {
		t.Fatalf("unaligned length: got %v, want ErrAlignment", err)
	}
	if err := cl.ReadAt(0, 0, nil, 0); !errors.Is(err, ErrAlignment) {
		t.Fatalf("empty read: got %v, want ErrAlignment", err)
	}
}

func TestClusterWriteQuorum(t *testing.T) {
	_, nodes, cl := newTestRing(t, 2, Config{Replicas: 2, WriteQuorum: 2, WriteBack: true, PlacementBlocks: 4})
	buf := make([]byte, block.Size)
	fillByte(buf, 1)
	if err := cl.WriteAt(0, 0, buf, 0); err != nil {
		t.Fatalf("healthy W=2 write: %v", err)
	}
	nodes[1].kill()
	fillByte(buf, 2)
	if err := cl.WriteAt(0, 0, buf, 0); !errors.Is(err, ErrWriteQuorum) {
		t.Fatalf("W=2 with a node down: got %v, want ErrWriteQuorum", err)
	}
	if st := cl.ClusterStats(); st.QuorumFailures == 0 || st.Hinted == 0 {
		t.Fatalf("expected quorum failure + hint counters to move: %+v", st)
	}
	// The failed write still reached the surviving replica and the hint
	// queue; after recovery the quorum is available again.
	nodes[1].restart()
	waitNodeState(t, cl, 1, "up", 10*time.Second)
	settle(t, cl, 10*time.Second)
	fillByte(buf, 3)
	if err := cl.WriteAt(0, 0, buf, 0); err != nil {
		t.Fatalf("W=2 write after recovery: %v", err)
	}
}

func TestClusterReadFallthrough(t *testing.T) {
	_, nodes, cl := newTestRing(t, 3, Config{Replicas: 2, PlacementBlocks: 2})
	const blocks = 32
	buf := make([]byte, block.Size)
	for n := uint64(0); n < blocks; n++ {
		fillByte(buf, byte(n+1))
		if err := cl.WriteAt(0, 0, buf, blockAt(n)); err != nil {
			t.Fatal(err)
		}
	}
	nodes[2].kill()
	for n := uint64(0); n < blocks; n++ {
		if err := cl.ReadAt(0, 0, buf, blockAt(n)); err != nil {
			t.Fatalf("read block %d with a node down: %v", n, err)
		}
		if buf[0] != byte(n+1) {
			t.Fatalf("block %d: got %d want %d", n, buf[0], byte(n+1))
		}
	}
}

func TestClusterJoinRebalances(t *testing.T) {
	_, nodes, cl := newTestRing(t, 2, Config{Replicas: 2, WriteBack: true, PlacementBlocks: 2})
	const blocks = 64
	buf := make([]byte, block.Size)
	for n := uint64(0); n < blocks; n++ {
		fillByte(buf, byte(n+1))
		if err := cl.WriteAt(0, 0, buf, blockAt(n)); err != nil {
			t.Fatal(err)
		}
	}
	joiner := startTNode(t, nodes[0].be, true)
	id, err := cl.Join(joiner.addr)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Fatalf("joined as id %d, want 2", id)
	}
	st := settle(t, cl, 15*time.Second)
	if st.RingSize != 3 {
		t.Fatalf("ring size %d after join, want 3", st.RingSize)
	}
	if st.Rebalanced == 0 {
		t.Fatal("join moved no blocks onto the new node")
	}
	// The new node must hold its share: with one old node down, every
	// read still sees the latest data.
	nodes[1].kill()
	for n := uint64(0); n < blocks; n++ {
		if err := cl.ReadAt(0, 0, buf, blockAt(n)); err != nil {
			t.Fatalf("read block %d after join with node 1 down: %v", n, err)
		}
		if buf[0] != byte(n+1) {
			t.Fatalf("block %d: got %d want %d", n, buf[0], byte(n+1))
		}
	}
}

func TestClusterLeaveRebalances(t *testing.T) {
	_, _, cl := newTestRing(t, 3, Config{Replicas: 2, WriteBack: true, PlacementBlocks: 2})
	const blocks = 64
	buf := make([]byte, block.Size)
	for n := uint64(0); n < blocks; n++ {
		fillByte(buf, byte(n+1))
		if err := cl.WriteAt(0, 0, buf, blockAt(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Leave(2); err != nil {
		t.Fatal(err)
	}
	st := settle(t, cl, 15*time.Second)
	if st.RingSize != 2 {
		t.Fatalf("ring size %d after leave, want 2", st.RingSize)
	}
	for n := uint64(0); n < blocks; n++ {
		if err := cl.ReadAt(0, 0, buf, blockAt(n)); err != nil {
			t.Fatalf("read block %d after leave: %v", n, err)
		}
		if buf[0] != byte(n+1) {
			t.Fatalf("block %d: got %d want %d", n, buf[0], byte(n+1))
		}
	}
	if err := cl.Leave(2); err == nil {
		t.Fatal("second leave of the same node should fail")
	}
}

func TestClusterFlushMakesEnsembleCurrent(t *testing.T) {
	be, nodes, cl := newTestRing(t, 2, Config{Replicas: 2, WriteBack: true, PlacementBlocks: 4})
	const blocks = 24
	buf := make([]byte, block.Size)
	for n := uint64(0); n < blocks/2; n++ {
		fillByte(buf, byte(n+1))
		if err := cl.WriteAt(0, 0, buf, blockAt(n)); err != nil {
			t.Fatal(err)
		}
	}
	nodes[1].kill()
	for n := uint64(blocks / 2); n < blocks; n++ {
		fillByte(buf, byte(n+1))
		if err := cl.WriteAt(0, 0, buf, blockAt(n)); err != nil {
			t.Fatal(err)
		}
	}
	nodes[1].restart()
	if err := cl.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if st := cl.ClusterStats(); st.DirtyKeys != 0 || st.HintDepth != 0 {
		t.Fatalf("dirty=%d hints=%d after flush, want 0/0", st.DirtyKeys, st.HintDepth)
	}
	// The shared ensemble itself must now hold the newest data.
	for n := uint64(0); n < blocks; n++ {
		if err := be.ReadAt(0, 0, buf, blockAt(n)); err != nil {
			t.Fatalf("backend read block %d: %v", n, err)
		}
		if buf[0] != byte(n+1) {
			t.Fatalf("backend block %d: got %d want %d after flush", n, buf[0], byte(n+1))
		}
	}
}

func TestClusterInvalidateDropsStaleCaches(t *testing.T) {
	be, _, cl := newTestRing(t, 2, Config{Replicas: 2, PlacementBlocks: 4})
	buf := make([]byte, block.Size)
	fillByte(buf, 1)
	if err := cl.WriteAt(0, 0, buf, blockAt(9)); err != nil {
		t.Fatal(err)
	}
	// The ensemble changes behind the caches (a different writer path).
	fillByte(buf, 2)
	if err := be.WriteAt(0, 0, buf, blockAt(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Invalidate(0, 0, blockAt(9), block.Size); err != nil {
		t.Fatal(err)
	}
	if err := cl.ReadAt(0, 0, buf, blockAt(9)); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 {
		t.Fatalf("read %d after invalidate, want the ensemble's 2", buf[0])
	}
}

// Invalidate with an unreachable node records a shed span that keeps
// excluding the stale range there until the heal replays it.
func TestClusterInvalidateUnreachableNodeHealsLater(t *testing.T) {
	be, nodes, cl := newTestRing(t, 2, Config{Replicas: 2, PlacementBlocks: 4})
	buf := make([]byte, block.Size)
	fillByte(buf, 1)
	if err := cl.WriteAt(0, 0, buf, blockAt(5)); err != nil {
		t.Fatal(err)
	}
	nodes[1].kill()
	fillByte(buf, 2)
	if err := be.WriteAt(0, 0, buf, blockAt(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Invalidate(0, 0, blockAt(5), block.Size); err == nil {
		t.Fatal("invalidate with a node down should report the failure")
	}
	// Node 1's stale copy is fenced: every read meanwhile must see 2.
	for i := 0; i < 4; i++ {
		if err := cl.ReadAt(0, 0, buf, blockAt(5)); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 2 {
			t.Fatalf("read %d while fenced, want 2", buf[0])
		}
	}
	nodes[1].restart()
	settle(t, cl, 10*time.Second)
	nodes[0].kill()
	if err := cl.ReadAt(0, 0, buf, blockAt(5)); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 {
		t.Fatalf("healed node served %d, want 2", buf[0])
	}
}

func TestClusterStatsAggregates(t *testing.T) {
	_, _, cl := newTestRing(t, 3, Config{Replicas: 2})
	buf := make([]byte, block.Size)
	if err := cl.WriteAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.CapacityBlocks == 0 {
		t.Fatalf("aggregated capacity is zero: %+v", st)
	}
	if st.Writes == 0 {
		t.Fatalf("aggregated writes is zero: %+v", st)
	}
}

func TestClusterObservabilityEndpoints(t *testing.T) {
	_, _, cl := newTestRing(t, 2, Config{Replicas: 2, WriteBack: true})
	buf := make([]byte, block.Size)
	if err := cl.WriteAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cl.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"sievestore_cluster_reads 1",
		"sievestore_cluster_writes 1",
		"sievestore_cluster_ring_size 2",
		"sievestore_cluster_nodes_up 2",
		"sievestore_cluster_node_0_up 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Cluster ClusterStats `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatalf("statusz decode: %v", err)
	}
	resp.Body.Close()
	if status.Cluster.RingSize != 2 || len(status.Cluster.Nodes) != 2 {
		t.Fatalf("statusz topology wrong: %+v", status.Cluster)
	}
	if status.Cluster.Nodes[0].State != "up" {
		t.Fatalf("statusz node state: %+v", status.Cluster.Nodes[0])
	}
}

// Join and Leave while a light load runs: no op may ever return stale
// data, whatever topology it raced with.
func TestClusterJoinLeaveUnderLoad(t *testing.T) {
	_, nodes, cl := newTestRing(t, 3, Config{Replicas: 2, WriteBack: true, PlacementBlocks: 2})
	const blocks = 32
	var versions [blocks]atomic.Uint32
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 1)
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, block.Size)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n := uint64((i*2 + w) % blocks)
				v := versions[n].Load()
				if i%3 != 0 && v > 0 {
					if err := cl.ReadAt(0, 0, buf, blockAt(n)); err != nil {
						continue
					}
					if got := uint32(buf[0]) | uint32(buf[1])<<8; got < v {
						select {
						case errs <- errors.New("stale read under membership change"):
						default:
						}
						return
					}
					continue
				}
				nv := v + 1
				buf[0], buf[1] = byte(nv), byte(nv>>8)
				if err := cl.WriteAt(0, 0, buf, blockAt(n)); err == nil {
					versions[n].Store(nv)
				}
			}
		}()
	}
	joiner := startTNode(t, nodes[0].be, true)
	if _, err := cl.Join(joiner.addr); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := cl.Leave(0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	settle(t, cl, 15*time.Second)
	buf := make([]byte, block.Size)
	for n := uint64(0); n < blocks; n++ {
		v := versions[n].Load()
		if v == 0 {
			continue
		}
		if err := cl.ReadAt(0, 0, buf, blockAt(n)); err != nil {
			t.Fatalf("final read block %d: %v", n, err)
		}
		if got := uint32(buf[0]) | uint32(buf[1])<<8; got < v {
			t.Fatalf("block %d: version %d < floor %d after join/leave", n, got, v)
		}
	}
}
