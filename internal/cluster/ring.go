// Rendezvous (highest-random-weight) placement: every placement group
// ranks every ring member by a keyed hash, and the top R members are the
// group's replica set. Unlike a token ring, rendezvous hashing needs no
// virtual-node bookkeeping, gives minimal movement on membership change
// (a join steals exactly the groups it now wins; a leave re-homes only
// the departed node's groups), and yields a deterministic, ordered
// preference list — the read path walks it for fall-through.
package cluster

// ring is an immutable membership snapshot. Topology changes build a new
// ring (copy-on-write) so block routing never takes a lock.
type ring struct {
	version uint64
	ids     []int // member node ids, ascending
}

func newRing(ids []int) *ring {
	r := &ring{version: 1, ids: append([]int(nil), ids...)}
	sortInts(r.ids)
	return r
}

// with returns a new ring including id.
func (r *ring) with(id int) *ring {
	n := &ring{version: r.version + 1}
	n.ids = append(append([]int(nil), r.ids...), id)
	sortInts(n.ids)
	return n
}

// without returns a new ring excluding id.
func (r *ring) without(id int) *ring {
	n := &ring{version: r.version + 1}
	for _, m := range r.ids {
		if m != id {
			n.ids = append(n.ids, m)
		}
	}
	return n
}

func (r *ring) has(id int) bool {
	for _, m := range r.ids {
		if m == id {
			return true
		}
	}
	return false
}

// mix64 is splitmix64's finalizer — a cheap, well-distributed 64-bit
// mixer (no external deps).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// score is the HRW weight of member id for a placement group.
func score(id int, group uint64) uint64 {
	return mix64(group ^ mix64(uint64(id)+0x9e3779b97f4a7c15))
}

// replicas appends the r highest-scoring members for group to out
// (best first) and returns it. r is clamped to the membership size.
func (r *ring) replicas(group uint64, n int, out []int) []int {
	out = out[:0]
	if n > len(r.ids) {
		n = len(r.ids)
	}
	if n <= 0 {
		return out
	}
	// Insertion into a tiny top-n list: n is 2 or 3 in practice, so this
	// beats sorting all members per group.
	scores := make([]uint64, 0, 8)
	for _, id := range r.ids {
		s := score(id, group)
		pos := len(out)
		for pos > 0 && s > scores[pos-1] {
			pos--
		}
		if pos >= n {
			continue
		}
		out = append(out, 0)
		scores = append(scores, 0)
		copy(out[pos+1:], out[pos:])
		copy(scores[pos+1:], scores[pos:])
		out[pos] = id
		scores[pos] = s
		if len(out) > n {
			out = out[:n]
			scores = scores[:n]
		}
	}
	return out
}

// sortInts is a tiny insertion sort (member lists are single digits).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
