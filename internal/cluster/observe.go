// Cluster observability: a structured snapshot of ring topology and
// per-node health for /statusz, and sievestore_cluster_* counters for
// /metrics.
package cluster

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/resilience"
)

// NodeStatus is one ring member's health in a ClusterStats snapshot.
type NodeStatus struct {
	ID      int    `json:"id"`
	Addr    string `json:"addr"`
	State   string `json:"state"`
	Healing bool   `json:"healing"`

	BreakerOpen bool                          `json:"breaker_open"`
	Trips       int64                         `json:"breaker_trips"`
	Transitions resilience.BreakerTransitions `json:"breaker_transitions"`

	HintDepth int   `json:"hint_depth"`
	ShedSpans int   `json:"shed_spans"`
	Sheds     int64 `json:"sheds"`
	Downs     int64 `json:"downs"`
	Ups       int64 `json:"ups"`
	Drains    int64 `json:"drains"`
}

// ClusterStats is a point-in-time snapshot of the whole ring.
type ClusterStats struct {
	RingVersion uint64 `json:"ring_version"`
	RingSize    int    `json:"ring_size"`
	Replicas    int    `json:"replicas"`
	WriteQuorum int    `json:"write_quorum"`
	WriteBack   bool   `json:"write_back"`

	Reads          int64 `json:"reads"`
	Writes         int64 `json:"writes"`
	ReadBlocks     int64 `json:"read_blocks"`
	WriteBlocks    int64 `json:"write_blocks"`
	Fallthroughs   int64 `json:"fallthroughs"`
	QuorumFailures int64 `json:"quorum_failures"`
	Hinted         int64 `json:"hinted"`
	Drained        int64 `json:"drained"`
	Rebalanced     int64 `json:"rebalanced"`
	StaleDropped   int64 `json:"stale_dropped"`
	Probes         int64 `json:"probes"`

	// DirtyKeys is the write-back dirty-tracking population;
	// UnderReplicated counts dirty keys not yet acked by every current
	// owner (the replication sweep's backlog — 0 when fully settled).
	DirtyKeys       int `json:"dirty_keys"`
	UnderReplicated int `json:"under_replicated"`
	HintDepth       int `json:"hint_depth"` // total across nodes

	Nodes []NodeStatus `json:"nodes"`
}

// ClusterStats snapshots the ring. The under-replication scan takes the
// stripe locks briefly; it is meant for scrapes and test settling, not
// hot paths.
func (c *Client) ClusterStats() ClusterStats {
	topo := c.topo.Load()
	st := ClusterStats{
		RingVersion:    topo.ring.version,
		RingSize:       len(topo.ring.ids),
		Replicas:       c.cfg.Replicas,
		WriteQuorum:    c.cfg.WriteQuorum,
		WriteBack:      c.cfg.WriteBack,
		Reads:          c.reads.Load(),
		Writes:         c.writes.Load(),
		ReadBlocks:     c.readBlocks.Load(),
		WriteBlocks:    c.writeBlocks.Load(),
		Fallthroughs:   c.fallthroughs.Load(),
		QuorumFailures: c.quorumFailures.Load(),
		Hinted:         c.hinted.Load(),
		Drained:        c.drained.Load(),
		Rebalanced:     c.rebalanced.Load(),
		StaleDropped:   c.staleDropped.Load(),
		Probes:         c.probes.Load(),
	}
	var owners []int
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		st.DirtyKeys += len(s.dirty)
		for k, e := range s.dirty {
			owners = topo.ownersFor(c, k, owners)
			for _, id := range owners {
				if e.acked&(1<<uint(id)) == 0 {
					st.UnderReplicated++
					break
				}
			}
		}
		s.mu.Unlock()
	}
	for _, n := range topo.nodes {
		n.mu.Lock()
		ns := NodeStatus{
			ID:        n.id,
			Addr:      n.addr,
			State:     stateName(n.state),
			Healing:   n.healing,
			HintDepth: len(n.hints),
			ShedSpans: len(n.shedSpans),
			Sheds:     n.sheds,
			Downs:     n.downs,
			Ups:       n.ups,
			Drains:    n.drains,
		}
		n.mu.Unlock()
		ns.BreakerOpen = n.br.Open()
		ns.Trips = n.br.Trips()
		ns.Transitions = n.br.Transitions()
		st.HintDepth += ns.HintDepth
		st.Nodes = append(st.Nodes, ns)
	}
	return st
}

// Register publishes the cluster counters into a metrics registry under
// sievestore.cluster.* (rendered sievestore_cluster_* in Prometheus
// exposition). Per-node series carry the node id in the name — the
// registry has no labels.
func (c *Client) Register(r *metrics.Registry) {
	cnt := func(name string, f func(ClusterStats) int64) {
		r.Counter("sievestore.cluster."+name, func() int64 { return f(c.clusterSnap()) })
	}
	gauge := func(name string, f func(ClusterStats) float64) {
		r.Gauge("sievestore.cluster."+name, func() float64 { return f(c.clusterSnap()) })
	}
	r.OnCollect(c.refreshSnap)
	cnt("reads", func(s ClusterStats) int64 { return s.Reads })
	cnt("writes", func(s ClusterStats) int64 { return s.Writes })
	cnt("read_blocks", func(s ClusterStats) int64 { return s.ReadBlocks })
	cnt("write_blocks", func(s ClusterStats) int64 { return s.WriteBlocks })
	cnt("fallthroughs", func(s ClusterStats) int64 { return s.Fallthroughs })
	cnt("quorum_failures", func(s ClusterStats) int64 { return s.QuorumFailures })
	cnt("hinted", func(s ClusterStats) int64 { return s.Hinted })
	cnt("drained", func(s ClusterStats) int64 { return s.Drained })
	cnt("rebalanced", func(s ClusterStats) int64 { return s.Rebalanced })
	cnt("stale_dropped", func(s ClusterStats) int64 { return s.StaleDropped })
	cnt("probes", func(s ClusterStats) int64 { return s.Probes })
	gauge("ring_version", func(s ClusterStats) float64 { return float64(s.RingVersion) })
	gauge("ring_size", func(s ClusterStats) float64 { return float64(s.RingSize) })
	gauge("replicas", func(s ClusterStats) float64 { return float64(s.Replicas) })
	gauge("write_quorum", func(s ClusterStats) float64 { return float64(s.WriteQuorum) })
	gauge("dirty_keys", func(s ClusterStats) float64 { return float64(s.DirtyKeys) })
	gauge("under_replicated", func(s ClusterStats) float64 { return float64(s.UnderReplicated) })
	gauge("hint_depth", func(s ClusterStats) float64 { return float64(s.HintDepth) })
	gauge("nodes_up", func(s ClusterStats) float64 {
		up := 0
		for _, n := range s.Nodes {
			if n.State == "up" {
				up++
			}
		}
		return float64(up)
	})
	for id := range c.topo.Load().nodes {
		id := id
		nodeSnap := func() NodeStatus {
			s := c.clusterSnap()
			if id < len(s.Nodes) {
				return s.Nodes[id]
			}
			return NodeStatus{}
		}
		pre := "node_" + strconv.Itoa(id)
		gauge(pre+".up", func(ClusterStats) float64 {
			if nodeSnap().State == "up" {
				return 1
			}
			return 0
		})
		gauge(pre+".hint_depth", func(ClusterStats) float64 { return float64(nodeSnap().HintDepth) })
		cnt(pre+".sheds", func(ClusterStats) int64 { return nodeSnap().Sheds })
		cnt(pre+".downs", func(ClusterStats) int64 { return nodeSnap().Downs })
		cnt(pre+".drains", func(ClusterStats) int64 { return nodeSnap().Drains })
		cnt(pre+".breaker_trips", func(ClusterStats) int64 { return nodeSnap().Trips })
	}
}

// refreshSnap recomputes the snapshot once per registry collection, so
// one scrape costs one stripe scan however many metrics read from it.
func (c *Client) refreshSnap() {
	s := c.ClusterStats()
	c.snapMu.Lock()
	c.snap = s
	c.snapMu.Unlock()
}

func (c *Client) clusterSnap() ClusterStats {
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	return c.snap
}

// Handler serves the cluster's own observability endpoints — /metrics
// (Prometheus text) and /statusz (JSON topology + counters) — for
// gateway deployments where the Client, not a local store, is the data
// path.
func (c *Client) Handler() http.Handler {
	reg := metrics.NewRegistry()
	c.Register(reg)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		body := map[string]any{
			"cluster": c.ClusterStats(),
			"metrics": reg.JSONStatus(),
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})
	return mux
}
