package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/appliance"
	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/store"
)

// The in-process multi-node harness: every "appliance" is a write-back
// (or write-through) core.Store over ONE shared in-memory ensemble,
// fronted by a real appliance.Server on a loopback port. Kill closes
// the server and abandons the store without flushing — the crash model:
// a killed node's cached dirty data is gone, and its restarted self
// comes back cold on the same address.

type tNode struct {
	t         *testing.T
	be        *store.Mem
	writeBack bool

	mu    sync.Mutex
	addr  string
	st    *core.Store
	srv   *appliance.Server
	done  chan struct{}
	alive bool
}

func testSieve() sieve.CConfig {
	return sieve.CConfig{IMCTSize: 1 << 12, T1: 1, T2: 1, Window: time.Hour, Subwindows: 4}
}

func (n *tNode) open(l net.Listener) {
	st, err := core.Open(n.be, core.Options{
		CacheBytes: 4 << 20, // larger than any test working set: no eviction churn
		WriteBack:  n.writeBack,
		SieveC:     testSieve(),
	})
	if err != nil {
		n.t.Fatal(err)
	}
	srv := appliance.NewServer(st)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	n.mu.Lock()
	n.addr, n.st, n.srv, n.done, n.alive = l.Addr().String(), st, srv, done, true
	n.mu.Unlock()
}

func startTNode(t *testing.T, be *store.Mem, writeBack bool) *tNode {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &tNode{t: t, be: be, writeBack: writeBack}
	n.open(l)
	t.Cleanup(n.stop)
	return n
}

// kill crashes the node: the server drops every connection and the
// store is abandoned — its un-flushed dirty blocks are lost, exactly
// like a power cut.
func (n *tNode) kill() {
	n.mu.Lock()
	srv, done, alive := n.srv, n.done, n.alive
	n.alive = false
	n.mu.Unlock()
	if !alive {
		return
	}
	srv.Close()
	<-done
}

// restart brings the node back cold on its previous address.
func (n *tNode) restart() {
	n.mu.Lock()
	addr, alive := n.addr, n.alive
	n.mu.Unlock()
	if alive {
		return
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err := net.Listen("tcp", addr)
		if err == nil {
			n.open(l)
			return
		}
		if time.Now().After(deadline) {
			n.t.Errorf("restart: cannot rebind %s: %v", addr, err)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (n *tNode) stop() {
	n.mu.Lock()
	srv, st, done, alive := n.srv, n.st, n.done, n.alive
	n.alive = false
	n.mu.Unlock()
	if alive {
		srv.Close()
		<-done
	}
	if st != nil {
		st.Close()
	}
}

// newTestRing builds count nodes over one shared ensemble plus a
// cluster client. Fast-failure dial/breaker/probe settings keep
// failover latency in test range.
func newTestRing(t *testing.T, count int, cfg Config) (*store.Mem, []*tNode, *Client) {
	t.Helper()
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<22)
	nodes := make([]*tNode, count)
	for i := range nodes {
		nodes[i] = startTNode(t, be, cfg.WriteBack)
		cfg.Nodes = append(cfg.Nodes, nodes[i].addr)
	}
	if cfg.Dial.Timeout == 0 {
		cfg.Dial.Timeout = 2 * time.Second
	}
	if cfg.Dial.DialTimeout == 0 {
		cfg.Dial.DialTimeout = 250 * time.Millisecond
	}
	if cfg.Dial.ReconnectBackoff == 0 {
		cfg.Dial.ReconnectBackoff = 5 * time.Millisecond
	}
	if cfg.Breaker.Threshold == 0 {
		cfg.Breaker.Threshold = 2
	}
	if cfg.Breaker.OpenFor == 0 {
		cfg.Breaker.OpenFor = 25 * time.Millisecond
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = 20 * time.Millisecond
	}
	cl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return be, nodes, cl
}

// settle waits until every hint queue, shed span, and under-replication
// backlog has cleared.
func settle(t *testing.T, cl *Client, within time.Duration) ClusterStats {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st := cl.ClusterStats()
		spans := 0
		for _, n := range st.Nodes {
			spans += n.ShedSpans
		}
		if st.HintDepth == 0 && st.UnderReplicated == 0 && spans == 0 {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not settle: hints=%d under_replicated=%d shed_spans=%d",
				st.HintDepth, st.UnderReplicated, spans)
		}
		cl.kickRepair()
		time.Sleep(10 * time.Millisecond)
	}
}

// waitNodeState polls until node id reaches the wanted state string.
func waitNodeState(t *testing.T, cl *Client, id int, want string, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st := cl.ClusterStats()
		if id < len(st.Nodes) && st.Nodes[id].State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d never became %q (now %+v)", id, want, st.Nodes[id])
		}
		cl.kickRepair()
		time.Sleep(5 * time.Millisecond)
	}
}

// blockAt returns the byte offset of block number n.
func blockAt(n uint64) uint64 { return n * block.Size }
