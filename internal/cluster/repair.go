// The background repair engine: one goroutine that probes down nodes,
// wipes the acked bits of nodes whose caches must be presumed lost,
// heals shed ranges, drains hinted handoff, and re-replicates
// under-replicated dirty blocks — which is also the whole rebalancing
// mechanism after Join/Leave, since membership change just makes some
// blocks under-replicated on their new owners and over-replicated on
// their old ones.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/appliance"
	"repro/internal/block"
)

// repairLoop runs repairPass on the ProbeEvery cadence, or sooner when
// kicked by a failure or a membership change.
func (c *Client) repairLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-c.kick:
		case <-t.C:
		}
		c.repairPass()
	}
}

// repairPass runs one full repair cycle. Serialized by repairMu: the
// loop and Flush's inline drain may both call it.
//
// Order matters: demotions sweep first so a restarted node's stale bits
// are gone before the prober may mark it up, and probing precedes
// heal/drain so a just-recovered node settles within the same pass.
func (c *Client) repairPass() {
	c.repairMu.Lock()
	defer c.repairMu.Unlock()
	topo := c.topo.Load()
	c.demoteSweep(topo)
	c.probeDown(topo)
	for _, n := range topo.nodes {
		if c.closed.Load() {
			return
		}
		if n.serving() {
			c.healSpans(n)
			c.drainNode(n)
		}
	}
	if c.cfg.WriteBack {
		c.replicationSweep(topo)
	}
	c.settleHealing(topo)
}

// demoteSweep clears the acked bits of every node that went down since
// the last pass: its cache contents must be presumed lost, so it no
// longer counts as holding any dirty block's freshest copy. Runs before
// probeDown (which skips demote-pending nodes), so a node can never
// come back up with pre-crash bits still standing.
func (c *Client) demoteSweep(topo *topology) {
	var mask uint64
	var pending []*node
	for _, n := range topo.nodes {
		if n.demotePending.Load() {
			mask |= 1 << uint(n.id)
			pending = append(pending, n)
		}
	}
	if mask == 0 {
		return
	}
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		for _, e := range s.dirty {
			// Entries that lose their last bit stay in the map: no replica
			// holds the data, so reads must fail (unavailable), never fall
			// back to a stale cached or backend copy.
			e.acked &^= mask
		}
		s.mu.Unlock()
	}
	for _, n := range pending {
		n.demotePending.Store(false)
	}
}

// probeDown sends a probe (a Stats round-trip) to each down node whose
// breaker allows one — Allow is what moves an expired open breaker to
// half-open, and a successful Record closes it. Probe success marks the
// node up and healing; its queued hints and shed ranges are then
// processed by the same pass.
func (c *Client) probeDown(topo *topology) {
	for _, n := range topo.nodes {
		if n.getState() != nodeDown || n.demotePending.Load() {
			continue
		}
		if n.br.Allow() != nil {
			continue
		}
		c.probes.Add(1)
		_, err := n.cl.Stats()
		n.br.Record(err)
		if err != nil {
			continue
		}
		n.mu.Lock()
		n.state = nodeUp
		n.ups++
		n.healing = true
		n.mu.Unlock()
	}
}

// healSpans replays the coarse shed ranges as on-node invalidations,
// chunked under the wire protocol's byte limit. A span is cleared only
// after the whole range invalidated; until then it keeps excluding
// reads.
func (c *Client) healSpans(n *node) {
	const chunkBlocks = appliance.MaxIOBytes / block.Size
	for v, s := range n.takeSpans() {
		healed := true
		for lo := s.lo; lo <= s.hi; {
			cnt := s.hi - lo + 1
			if cnt > chunkBlocks {
				cnt = chunkBlocks
			}
			_, err := n.cl.Invalidate(v.server, v.volume, lo*block.Size, int(cnt)*block.Size)
			c.recordResult(n, err)
			if err != nil {
				healed = false
				break
			}
			lo += cnt
		}
		if healed {
			n.clearSpan(v, s)
		} else if !n.serving() {
			return
		}
	}
}

// drainNode delivers the node's hinted handoff queue, oldest key first.
// Each delivery runs under the key's stripe lock, so it cannot race a
// fresh direct write, a supersede, or a re-replication of the same key;
// the hint entry is removed only after the node acknowledged, so reads
// keep excluding the key at this node for the whole in-flight window.
// Replay is idempotent: the queue holds one newest hint per key, and
// re-delivering a block write or invalidation is harmless.
func (c *Client) drainNode(n *node) {
	for n.serving() && !c.closed.Load() {
		k, ok := n.popDrainKey()
		if !ok {
			return
		}
		s := &c.stripes[stripeIdx(k)]
		s.mu.Lock()
		data, ok := n.takeHint(k)
		if !ok {
			// Superseded by a direct write after it was queued.
			s.mu.Unlock()
			continue
		}
		var err error
		if data == nil {
			_, err = n.cl.Invalidate(k.Server(), k.Volume(), k.Offset(), block.Size)
		} else {
			err = n.cl.WriteAt(k.Server(), k.Volume(), data, k.Offset())
		}
		c.recordResult(n, err)
		if err != nil {
			n.requeue(k)
			s.mu.Unlock()
			return
		}
		n.confirmHint(k)
		if data != nil {
			c.markAcked(k, n.id, true)
		}
		c.drained.Add(1)
		s.mu.Unlock()
	}
}

// replicationSweep walks the dirty map and restores every key to full
// replication on its current owners: copy from any node still holding
// the freshest data to each up-to-date-less owner, then — once every
// owner holds it — invalidate the leftover copies on former owners.
// This single mechanism covers re-replication after a crash demotion
// AND key movement after Join/Leave (the source may well not be an
// owner anymore; that is how data streams off a departed node).
func (c *Client) replicationSweep(topo *topology) {
	var owners []int
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		keys := make([]block.Key, 0, len(s.dirty))
		for k := range s.dirty {
			keys = append(keys, k)
		}
		s.mu.Unlock()
		// Per-key locking keeps the stripe available to writers between
		// copies — a sweep may do a lot of network I/O.
		for _, k := range keys {
			if c.closed.Load() {
				return
			}
			owners = c.repairKey(topo, k, owners)
		}
	}
}

// repairKey restores one dirty key to full replication; see
// replicationSweep. Holds the key's stripe lock across the copy, which
// guarantees the copied bytes are the freshest acked version.
func (c *Client) repairKey(topo *topology, k block.Key, owners []int) []int {
	s := &c.stripes[stripeIdx(k)]
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.dirty[k]
	if e == nil || e.acked == 0 {
		// Deleted meanwhile, or every holder crashed: nothing to copy from.
		return owners
	}
	owners = topo.ownersFor(c, k, owners)
	var src *node
	for _, t := range topo.nodes {
		if e.acked&(1<<uint(t.id)) != 0 && t.canSource() {
			src = t
			break
		}
	}
	var buf []byte
	for _, id := range owners {
		t := topo.nodes[id]
		if e.acked&(1<<uint(id)) != 0 {
			continue
		}
		if src == nil || !t.serving() || t.demotePending.Load() {
			continue
		}
		if buf == nil {
			buf = make([]byte, block.Size)
			if err := src.cl.ReadAt(k.Server(), k.Volume(), buf, k.Offset()); err != nil {
				c.recordResult(src, err)
				return owners // retry whole key next pass
			}
			c.recordResult(src, nil)
		}
		if err := t.cl.WriteAt(k.Server(), k.Volume(), buf, k.Offset()); err != nil {
			c.recordResult(t, err)
			continue
		}
		c.recordResult(t, nil)
		e.acked |= 1 << uint(id)
		t.dropHint(k) // the copy is fresher than any queued hint
		c.rebalanced.Add(1)
	}
	for _, id := range owners {
		if e.acked&(1<<uint(id)) == 0 {
			return owners // not fully covered yet; keep old copies as sources
		}
	}
	// Full coverage: the former owners' copies are redundant. Invalidate
	// where reachable so a later ownership flip cannot surface them.
	for _, t := range topo.nodes {
		bit := uint64(1) << uint(t.id)
		if e.acked&bit == 0 || containsInt(owners, t.id) {
			continue
		}
		if !t.serving() && t.getState() != nodeRemoved {
			continue // down: the demote sweep clears its bit
		}
		if _, err := t.cl.Invalidate(k.Server(), k.Volume(), k.Offset(), block.Size); err != nil {
			c.recordResult(t, err)
			continue
		}
		c.recordResult(t, nil)
		e.acked &^= bit
		c.staleDropped.Add(1)
	}
	return owners
}

// settleHealing clears the healing flag on nodes whose hint queue and
// shed union have fully settled.
func (c *Client) settleHealing(topo *topology) {
	for _, n := range topo.nodes {
		n.mu.Lock()
		if n.healing && len(n.hints) == 0 && len(n.shedSpans) == 0 {
			n.healing = false
		}
		n.mu.Unlock()
	}
}

// --- membership ------------------------------------------------------

// Join dials addr, adds it to the ring, and kicks the repair goroutine,
// whose replication sweep streams the dirty keys the new node now owns.
// Returns the new node's id.
func (c *Client) Join(addr string) (int, error) {
	if c.closed.Load() {
		return 0, ErrClosed
	}
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	topo := c.topo.Load()
	id := len(topo.nodes)
	if id >= 64 {
		return 0, ErrTooManyNodes
	}
	cl, err := appliance.DialWith(addr, c.cfg.Dial)
	if err != nil {
		return 0, fmt.Errorf("cluster: dial joining node %s: %w", addr, err)
	}
	nodes := append(append([]*node(nil), topo.nodes...), newNode(id, addr, cl, c.cfg.Breaker))
	c.topo.Store(&topology{ring: topo.ring.with(id), nodes: nodes})
	c.kickRepair()
	return id, nil
}

// Leave removes node id from the ring. The node keeps its slot (and its
// acked bits — it remains a re-replication *source* until its dirty
// blocks have streamed to their new owners), but takes no new traffic:
// it is not consulted for reads, and writes route to the shrunk ring.
// In write-back mode, call after the rebalance settles or accept that
// un-streamed sole copies become unavailable; Flush first for a clean
// departure.
func (c *Client) Leave(id int) error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	topo := c.topo.Load()
	if id < 0 || id >= len(topo.nodes) || !topo.ring.has(id) {
		return fmt.Errorf("cluster: node %d not in ring", id)
	}
	n := topo.nodes[id]
	n.mu.Lock()
	n.state = nodeRemoved
	// Pending deliveries are moot: the node serves nothing anymore.
	n.hints = make(map[block.Key]*hintOp)
	n.order = nil
	n.shedSpans = make(map[volID]span)
	n.mu.Unlock()
	c.topo.Store(&topology{ring: topo.ring.without(id), nodes: topo.nodes})
	c.kickRepair()
	return nil
}

// canSource reports whether the node may serve as a re-replication
// source: up or administratively removed (data intact either way), with
// a quiet breaker.
func (n *node) canSource() bool {
	n.mu.Lock()
	st := n.state
	n.mu.Unlock()
	return (st == nodeUp || st == nodeRemoved) && !n.br.Open()
}

func containsInt(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}
