// The replicated data path: write fan-out with W-of-R direct-ack
// quorums and hint buffering, and read replica selection with
// fall-through.
//
// Freshness invariant: after a write completes, every owner either (a)
// directly acknowledged the data, (b) has a pending hint for the key,
// or (c) had its hint shed into the shed-range union (and, in
// write-back mode, its acked bit cleared). Reads exclude (b), (c), and
// — for dirty keys — nodes without the acked bit, so a successful read
// can never return data older than the last acknowledged write.
package cluster

import (
	"fmt"
	"sync"

	"repro/internal/appliance"
	"repro/internal/block"
)

// mergeCap bounds how many bytes of adjacent blocks a single extent
// accumulates when batching per node.
const mergeCap = 512 * 1024

// nodePlan is one node's share of an op: the ref indices routed to it.
type nodePlan struct {
	n    *node
	idxs []int
}

// planFor lazily creates the plan entry for a node.
func planFor(plans map[int]*nodePlan, n *node) *nodePlan {
	p := plans[n.id]
	if p == nil {
		p = &nodePlan{n: n}
		plans[n.id] = p
	}
	return p
}

// buildExtents turns a node's ref indices into wire extents, merging
// runs of adjacent blocks whose buffer slices are contiguous (same
// source segment, consecutive keys, adjacent indices).
func buildExtents(refs []blockRef, idxs []int) []appliance.Extent {
	exts := make([]appliance.Extent, 0, len(idxs))
	prev := -2
	for _, i := range idxs {
		r := refs[i]
		if i == prev+1 {
			pr := refs[prev]
			last := &exts[len(exts)-1]
			if r.seg == pr.seg && r.key == pr.key+1 &&
				len(last.Data)+block.Size <= mergeCap &&
				cap(last.Data) >= len(last.Data)+block.Size {
				last.Data = last.Data[:len(last.Data)+block.Size]
				prev = i
				continue
			}
		}
		exts = append(exts, appliance.Extent{
			Server: r.key.Server(),
			Volume: r.key.Volume(),
			Off:    r.key.Offset(),
			Data:   r.data,
		})
		prev = i
	}
	return exts
}

// sendExtents ships extents to one node, chunked under the wire
// protocol's extent-count and byte limits; single extents go scalar.
func sendExtents(n *node, exts []appliance.Extent, write bool) error {
	for len(exts) > 0 {
		count, bytes := 0, 0
		for count < len(exts) && count < appliance.MaxVecExtents {
			if bytes+len(exts[count].Data) > appliance.MaxIOBytes {
				break
			}
			bytes += len(exts[count].Data)
			count++
		}
		if count == 0 {
			count = 1 // a single over-budget extent cannot happen (≤ mergeCap)
		}
		chunk := exts[:count]
		var err error
		switch {
		case len(chunk) == 1 && write:
			err = n.cl.WriteAt(chunk[0].Server, chunk[0].Volume, chunk[0].Data, chunk[0].Off)
		case len(chunk) == 1:
			err = n.cl.ReadAt(chunk[0].Server, chunk[0].Volume, chunk[0].Data, chunk[0].Off)
		case write:
			err = n.cl.WriteBatch(chunk)
		default:
			err = n.cl.ReadBatch(chunk)
		}
		if err != nil {
			return err
		}
		exts = exts[count:]
	}
	return nil
}

// hintBlockLocked buffers ref for n and clears n's acked bit — the node
// no longer holds the freshest copy until the hint drains. Caller holds
// ref's stripe lock.
func (c *Client) hintBlockLocked(n *node, ref blockRef) {
	data := append([]byte(nil), ref.data...)
	n.offerHint(ref.key, data, c.cfg.HandoffMax)
	c.hinted.Add(1)
	c.markAcked(ref.key, n.id, false)
}

// effectiveQuorum is W clamped to the live ring size.
func (c *Client) effectiveQuorum(topo *topology) int {
	need := c.cfg.WriteQuorum
	if rs := len(topo.ring.ids); need > rs {
		need = rs
	}
	return need
}

// writeRefs fans the blocks out to their owners: direct batched writes
// to serving nodes, hints for the rest. Per block, at least
// effectiveQuorum owners must acknowledge directly or the op fails with
// ErrWriteQuorum (hinted copies are still delivered eventually either
// way). The refs' stripe locks are held across the fan-out, serializing
// same-key writes, hint supersede, drain, and re-replication against
// each other.
func (c *Client) writeRefs(refs []blockRef) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if len(refs) == 0 {
		return nil
	}
	topo := c.topo.Load()
	unlock := c.lockStripes(refs)
	defer unlock()

	plans := make(map[int]*nodePlan)
	var owners []int
	lastGroup := ^uint64(0)
	for i, ref := range refs {
		if g := c.group(ref.key); g != lastGroup {
			owners = topo.ownersFor(c, ref.key, owners)
			lastGroup = g
		}
		for _, id := range owners {
			n := topo.nodes[id]
			if n.serving() {
				p := planFor(plans, n)
				p.idxs = append(p.idxs, i)
			} else {
				c.hintBlockLocked(n, ref)
			}
		}
	}

	acks := make([]int, len(refs))
	var mu sync.Mutex // serializes ack/hint/dirty bookkeeping across node goroutines
	var wg sync.WaitGroup
	for _, p := range plans {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := sendExtents(p.n, buildExtents(refs, p.idxs), true)
			c.recordResult(p.n, err)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				for _, i := range p.idxs {
					acks[i]++
					c.markAcked(refs[i].key, p.n.id, true)
					// Any pending hint predates this write: superseded.
					p.n.dropHint(refs[i].key)
				}
				return
			}
			for _, i := range p.idxs {
				c.hintBlockLocked(p.n, refs[i])
			}
		}()
	}
	wg.Wait()
	c.writeBlocks.Add(int64(len(refs)))

	need := c.effectiveQuorum(topo)
	for i, a := range acks {
		if a < need {
			c.quorumFailures.Add(1)
			c.kickRepair()
			return fmt.Errorf("%w: block %v got %d/%d direct acks", ErrWriteQuorum, refs[i].key, a, need)
		}
	}
	return nil
}

// readEligible reports whether node id may serve key right now: it must
// be serving, hold no pending hint or shed range covering the key, and
// — for a write-back-dirty key — carry the acked bit.
func (c *Client) readEligible(n *node, key block.Key) bool {
	if !n.serving() {
		return false
	}
	if n.pendingHint(key) || n.inShed(key) {
		return false
	}
	return c.ackedBit(key, n.id)
}

// readRefs fills every ref from the first eligible replica in its
// preference order, falling through to the next replica when a node
// fails mid-read. Takes no stripe locks: eligibility checks are
// point-in-time, and the freshness invariant (see package comment)
// makes any eligible replica safe.
func (c *Client) readRefs(refs []blockRef) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if len(refs) == 0 {
		return nil
	}
	topo := c.topo.Load()
	pending := make([]int, len(refs))
	for i := range pending {
		pending[i] = i
	}
	tried := make([]uint64, len(refs))

	for pass := 0; len(pending) > 0; pass++ {
		if pass > c.cfg.Replicas {
			return fmt.Errorf("%w: exhausted %d fall-through passes", ErrNoReplica, pass)
		}
		plans := make(map[int]*nodePlan)
		var owners []int
		lastGroup := ^uint64(0)
		for _, i := range pending {
			ref := refs[i]
			if g := c.group(ref.key); g != lastGroup {
				owners = topo.ownersFor(c, ref.key, owners)
				lastGroup = g
			}
			chosen := -1
			for _, id := range owners {
				if tried[i]&(1<<uint(id)) != 0 {
					continue
				}
				if c.readEligible(topo.nodes[id], ref.key) {
					chosen = id
					break
				}
			}
			if chosen < 0 {
				return fmt.Errorf("%w: block %v (every owner down, hinted, shed, or behind)", ErrNoReplica, ref.key)
			}
			tried[i] |= 1 << uint(chosen)
			p := planFor(plans, topo.nodes[chosen])
			p.idxs = append(p.idxs, i)
		}

		var mu sync.Mutex
		var failed []int
		var wg sync.WaitGroup
		for _, p := range plans {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				err := sendExtents(p.n, buildExtents(refs, p.idxs), false)
				c.recordResult(p.n, err)
				if err != nil {
					mu.Lock()
					failed = append(failed, p.idxs...)
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if len(failed) > 0 {
			c.fallthroughs.Add(int64(len(failed)))
			sortInts(failed)
		}
		pending = failed
	}
	c.readBlocks.Add(int64(len(refs)))
	return nil
}
