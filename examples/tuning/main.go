// Tuning: reproduce the paper's §5.1 sensitivity observations — the
// SieveStore-D threshold sweep, the SieveStore-C window sweep, and the
// DESIGN.md ablations (single-tier sieve, subwindow discretization).
//
//	go run ./examples/tuning
//	go run ./examples/tuning -scale 8192
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	scale := flag.Int("scale", 16384, "trace scale divisor")
	flag.Parse()

	cfg := exp.DefaultConfig(*scale)
	fmt.Printf("sensitivity & ablations at scale 1/%d\n\n", *scale)

	dRows, err := exp.SensitivityD(cfg, []int64{4, 6, 8, 10, 14, 20})
	if err != nil {
		log.Fatal(err)
	}
	wRows, err := exp.SensitivityCWindow(cfg, []time.Duration{
		1 * time.Hour, 2 * time.Hour, 4 * time.Hour, 8 * time.Hour, 16 * time.Hour})
	if err != nil {
		log.Fatal(err)
	}
	aRows, err := exp.AblationSingleTier(cfg)
	if err != nil {
		log.Fatal(err)
	}
	kRows, err := exp.AblationSubwindows(cfg, []int{1, 2, 4, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp.FormatSensitivity(dRows, wRows, aRows, kRows))

	fmt.Println("Reading the sweeps:")
	fmt.Println("  - SieveStore-D: hits fall slowly above t≈8 but moves fall fast — the paper")
	fmt.Println("    picks t=10 as the knee. Below t≈8 the selected set exceeds the cache and")
	fmt.Println("    sieving degenerates.")
	fmt.Println("  - SieveStore-C: windows shorter than ~8h expire hot blocks' miss counts")
	fmt.Println("    before they qualify; longer windows change little.")
	fmt.Println("  - Single-tier: aliased counts admit low-reuse blocks (more alloc-writes for")
	fmt.Println("    the same or worse hit ratio) — the reason the MCT exists.")
	fmt.Println("  - Subwindows: the k-counter discretization of the sliding window is benign.")
}
