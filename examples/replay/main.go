// Replay: drive the real SieveStore data path (core.Store over an
// in-memory ensemble) with the synthetic MSR-style trace, letting the
// virtual clock follow trace time so SieveStore-D's daily epochs rotate
// exactly as in the paper, and print a Figure 5-style per-day report.
//
//	go run ./examples/replay
//	go run ./examples/replay -variant c -scale 32768
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		scale   = flag.Int("scale", 65536, "trace scale divisor")
		days    = flag.Int("days", 4, "days to replay")
		variant = flag.String("variant", "d", "sieve variant: c or d")
	)
	flag.Parse()

	cfg := workload.Default(*scale)
	cfg.Days = *days
	gen, err := workload.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	clk := replay.NewClock(time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC))
	opts := core.Options{
		CacheBytes: (16 << 30) / int64(*scale) / block.Size * block.Size,
		Now:        clk.Now,
	}
	if *variant == "d" {
		opts.Variant = core.VariantD
		opts.Epoch = 24 * time.Hour
	} else {
		opts.Variant = core.VariantC
	}
	st, err := core.Open(replay.BuildBackend(cfg), opts)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	fmt.Printf("replaying %d days at scale 1/%d through %s (cache %d blocks)\n\n",
		*days, *scale, st.Variant(), st.Stats().CapacityBlocks)

	reports, err := replay.Run(st, gen, clk, replay.Options{RotateDaily: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-5s %10s %10s %8s %10s %10s %8s\n",
		"Day", "Requests", "Blocks", "Hit%", "AllocWr", "Moves", "Cached")
	for _, r := range reports {
		fmt.Printf("%-5d %10d %10d %8.2f %10d %10d %8d\n",
			r.Day, r.Requests, r.Accesses, 100*r.HitRatio(), r.AllocWrites, r.Moves,
			st.Stats().CachedBlocks)
	}

	s := st.Stats()
	fmt.Printf("\ntotals: %.1f%% of %d block accesses served from the cache; "+
		"%d alloc-writes; %d epoch moves; %d backend reads\n",
		100*s.HitRatio(), s.Reads+s.Writes, s.AllocWrites, s.EpochMoves, s.BackendReads)
}
