// Warm restart: a SieveStore appliance spends its uptime learning the
// popular-block set; a snapshot preserves that investment across a restart,
// so the next process starts hitting immediately instead of re-sieving from
// scratch. Demonstrates SaveSnapshot/LoadSnapshot and write-back mode.
//
//	go run ./examples/warmrestart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/store"
)

const (
	hotBlocks  = 64
	coldBlocks = 4096
	phaseOps   = 2500
)

// workloadPhase runs a skewed read/write mix and returns the phase's hit
// ratio.
func workloadPhase(st *core.Store, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	before := st.Stats()
	buf := make([]byte, 4096)
	for i := 0; i < phaseOps; i++ {
		var chunk int
		if rng.Float64() < 0.6 {
			chunk = int(float64(hotBlocks) * rng.Float64() * rng.Float64())
		} else {
			chunk = hotBlocks + rng.Intn(coldBlocks)
		}
		off := uint64(chunk) * 4096
		var err error
		if rng.Float64() < 0.3 {
			err = st.WriteAt(0, 0, buf, off)
		} else {
			err = st.ReadAt(0, 0, buf, off)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	after := st.Stats()
	acc := (after.Reads + after.Writes) - (before.Reads + before.Writes)
	hits := after.Hits() - before.Hits()
	return float64(hits) / float64(acc)
}

func openStore(backend core.Backend) *core.Store {
	st, err := core.Open(backend, core.Options{
		CacheBytes: 2 << 20,
		Variant:    core.VariantC,
		WriteBack:  true, // writes to hot blocks stay in the cache
		SieveC: sieve.CConfig{
			IMCTSize: 1 << 14, T1: 2, T2: 2,
			Window: time.Hour, Subwindows: 4,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func main() {
	log.SetFlags(0)
	backend := store.NewMem()
	backend.AddVolume(0, 0, 1<<28)
	snapPath := filepath.Join(os.TempDir(), "sievestore-warmrestart.snap")
	defer os.Remove(snapPath)

	// ---- First process lifetime: learn the hot set. ----
	st := openStore(backend)
	cold := workloadPhase(st, 1)
	warm := workloadPhase(st, 2)
	fmt.Printf("first run:   cold-phase hits %5.1f%% → warmed-up hits %5.1f%% (dirty blocks: %d)\n",
		100*cold, 100*warm, st.Stats().DirtyBlocks)

	// Snapshot on the way down (this also flushes write-back data).
	cachedAtShutdown := st.Stats().CachedBlocks
	f, err := os.Create(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := st.SaveSnapshot(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if err := st.Close(); err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot:    %d cached blocks → %d bytes on disk\n", cachedAtShutdown, fi.Size())

	// ---- "Restart": a cold process would re-pay the sieving cost... ----
	coldStore := openStore(backend)
	coldRestart := workloadPhase(coldStore, 3)
	coldStore.Close()

	// ---- ...but loading the snapshot starts warm. ----
	st2 := openStore(backend)
	f, err = os.Open(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := st2.LoadSnapshot(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("restored:    %d blocks resident before the first request\n", st2.Stats().CachedBlocks)
	warmRestart := workloadPhase(st2, 3) // identical phase as the cold restart
	st2.Close()

	fmt.Printf("\nrestart comparison (same workload):\n")
	fmt.Printf("  cold restart: %5.1f%% hits\n", 100*coldRestart)
	fmt.Printf("  warm restart: %5.1f%% hits\n", 100*warmRestart)
	if warmRestart <= coldRestart {
		log.Fatal("warm restart did not help — snapshot broken?")
	}
}
