// Quickstart: put a SieveStore cache in front of a storage backend and
// watch the sieve admit only blocks that prove popular.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	// The storage ensemble: two servers, one volume each.
	backend := store.NewMem()
	backend.AddVolume(0, 0, 1<<30)
	backend.AddVolume(1, 0, 1<<30)

	// A small SieveStore-C cache: admit a block once it has missed about
	// four times within the last hour (T1=2 imprecise misses to enter
	// precise tracking, then T2=2 precise misses to allocate).
	st, err := core.Open(backend, core.Options{
		CacheBytes: 1 << 20, // 1 MiB cache (2048 blocks)
		Variant:    core.VariantC,
		SieveC: sieve.CConfig{
			IMCTSize: 1 << 16, T1: 2, T2: 2,
			Window: time.Hour, Subwindows: 4,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Write some data through the store (write-through: the backend is
	// always up to date).
	hot := bytes.Repeat([]byte("hot!"), 1024) // 4 KiB
	if err := st.WriteAt(0, 0, hot, 0); err != nil {
		log.Fatal(err)
	}

	// A popular block: read it repeatedly. The first reads miss; the sieve
	// admits it once its recent-miss count crosses the threshold; later
	// reads are cache hits.
	buf := make([]byte, 4096)
	for i := 1; i <= 5; i++ {
		if err := st.ReadAt(0, 0, buf, 0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read %d: cached=%v\n", i, st.Contains(0, 0, 0))
	}
	if !bytes.Equal(buf, hot) {
		log.Fatal("data corruption!")
	}

	// One-shot blocks: scanned once, never admitted — no allocation-writes,
	// no pollution. This is the sieve doing its job.
	for off := uint64(1 << 20); off < 1<<20+100*4096; off += 4096 {
		if err := st.ReadAt(1, 0, buf, off); err != nil {
			log.Fatal(err)
		}
	}

	s := st.Stats()
	fmt.Printf("\nstats after workload:\n")
	fmt.Printf("  accesses:      %d blocks (%d reads, %d writes)\n", s.Reads+s.Writes, s.Reads, s.Writes)
	fmt.Printf("  hits:          %d (ratio %.1f%%)\n", s.Hits(), 100*s.HitRatio())
	fmt.Printf("  alloc-writes:  %d  ← only the popular block's 8 blocks\n", s.AllocWrites)
	fmt.Printf("  cached blocks: %d of %d\n", s.CachedBlocks, s.CapacityBlocks)
	fmt.Printf("  backend reads: %d requests\n", s.BackendReads)
}
