// Appliance: run SieveStore as a transparent TCP block-caching appliance in
// front of a slow (latency-modelled) storage ensemble, drive it with
// concurrent clients from several "servers", and show the cache absorbing
// the popular blocks (paper Figure 4's deployment).
//
//	go run ./examples/appliance
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/appliance"
	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/store"
)

const (
	servers      = 4
	hotBlocks    = 32      // popular 4 KiB chunks per server
	coldBlocks   = 4096    // one-shot chunks per server
	opsPerClient = 3000    // accesses per client
	hotAccessP   = 0.5     // probability an access targets the hot set
	volumeBytes  = 1 << 28 // 256 MiB per server volume
)

func main() {
	log.SetFlags(0)
	// The ensemble: an in-memory backend wrapped in an HDD-like latency
	// model. (Accounted, not slept, so the example finishes instantly; the
	// BusyTime number below is what the disks would have spent.)
	mem := store.NewMem()
	for s := 0; s < servers; s++ {
		mem.AddVolume(s, 0, volumeBytes)
	}
	ensemble := store.NewLatency(mem)

	st, err := core.Open(ensemble, core.Options{
		CacheBytes: 4 << 20, // 4 MiB-equivalent cache
		Variant:    core.VariantC,
		SieveC: sieve.CConfig{
			IMCTSize: 1 << 16, T1: 2, T2: 2,
			Window: time.Hour, Subwindows: 4,
		},
		TrackLatency: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	srv := appliance.NewServer(st)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	fmt.Printf("appliance listening on %s\n", l.Addr())

	// Each "server" runs a client with its own hot set and a long cold
	// tail — the ensemble-level skew of the paper's O1.
	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < servers; s++ {
		wg.Add(1)
		go func(server int) {
			defer wg.Done()
			client, err := appliance.Dial(l.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer client.Close()
			rng := rand.New(rand.NewSource(int64(server) + 1))
			buf := make([]byte, 4096)
			for i := 0; i < opsPerClient; i++ {
				var chunk int
				if rng.Float64() < hotAccessP {
					// Zipf-ish choice within the hot set.
					chunk = int(float64(hotBlocks) * rng.Float64() * rng.Float64())
				} else {
					chunk = hotBlocks + rng.Intn(coldBlocks)
				}
				off := uint64(chunk) * 4096
				var err error
				if rng.Float64() < 0.25 {
					err = client.WriteAt(server, 0, buf, off)
				} else {
					err = client.ReadAt(server, 0, buf, off)
				}
				if err != nil {
					log.Fatalf("server %d: %v", server, err)
				}
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats := st.Stats()
	fmt.Printf("\n%d clients × %d ops finished in %v\n", servers, opsPerClient, elapsed.Round(time.Millisecond))
	fmt.Printf("  block accesses:   %d\n", stats.Reads+stats.Writes)
	fmt.Printf("  hit ratio:        %.1f%%\n", 100*stats.HitRatio())
	fmt.Printf("  alloc-writes:     %d blocks (admitted %d chunks)\n",
		stats.AllocWrites, stats.AllocWrites/int64(block.BlocksPerPage))
	fmt.Printf("  cached:           %d / %d blocks\n", stats.CachedBlocks, stats.CapacityBlocks)
	fmt.Printf("  ensemble load:    %d requests, %v of disk time avoided by %d hit-blocks\n",
		ensemble.Ops(), (time.Duration(stats.Hits()/8) * 8 * time.Millisecond).Round(time.Millisecond), stats.Hits())
	fmt.Printf("  ensemble busy:    %v (what the HDDs actually absorbed)\n", ensemble.BusyTime().Round(time.Millisecond))
	fmt.Printf("  read latency:     mean %v, worst %v over %d ops (%.0f reads/s)\n",
		stats.ReadLatency.Mean().Round(time.Microsecond),
		time.Duration(stats.ReadLatency.MaxNanos).Round(time.Microsecond),
		stats.ReadLatency.Ops, stats.ReadLatency.Throughput(elapsed))
	fmt.Printf("  write latency:    mean %v, worst %v over %d ops (%.0f writes/s)\n",
		stats.WriteLatency.Mean().Round(time.Microsecond),
		time.Duration(stats.WriteLatency.MaxNanos).Round(time.Microsecond),
		stats.WriteLatency.Ops, stats.WriteLatency.Throughput(elapsed))
}
