// Command experiments regenerates every table and figure of the paper's
// evaluation (Table 1/2, Figures 2-3 and 5-9, §5.3, the §5.1 sensitivity
// analyses and the DESIGN.md ablations) over the synthetic ensemble trace,
// printing each as a labelled plain-text table. EXPERIMENTS.md records a
// run of this command.
//
// Usage:
//
//	experiments                 # full run at the default scale (1/512)
//	experiments -scale 4096     # quicker, coarser
//	experiments -skip-sweeps    # omit the sensitivity/ablation reruns
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/exp"
	"repro/internal/sieve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		scale      = flag.Int("scale", 512, "trace scale divisor (512 = default experiment scale)")
		seed       = flag.Int64("seed", 1, "trace seed")
		skipSweeps = flag.Bool("skip-sweeps", false, "skip sensitivity sweeps and ablations")
		sweepScale = flag.Int("sweep-scale", 0, "scale for sweeps (default: 8x the main scale)")
		csvDir     = flag.String("csv", "", "also export per-figure CSV series into this directory")
		traceDir   = flag.String("trace", "", "day-split trace directory to evaluate instead of the synthetic workload (set -scale to the trace's scale; 1 for raw MSR traces)")
	)
	flag.Parse()

	cfg := exp.DefaultConfig(*scale)
	cfg.Workload.Seed = *seed
	cfg.TraceDir = *traceDir
	fmt.Printf("SieveStore reproduction — scale 1/%d, seed %d\n", *scale, *seed)
	fmt.Printf("(cache %.0f GB-equivalent = %d blocks; unsieved comparison also at %.0f GB)\n\n",
		cfg.CacheGB, cfg.CacheBlocks(cfg.CacheGB), cfg.BigCacheGB)

	res, err := exp.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	section := func(id, title string) {
		fmt.Printf("\n================ %s — %s ================\n", id, title)
	}

	section("T1", "Trace summary")
	fmt.Println(res.Table1())
	section("T2", "Allocation-policy impact (analytic, oracle replacement)")
	for _, row := range sieve.Table2(0.35, 0.75, 0) {
		fmt.Printf("%-32s hits=%.4f misses=%.4f allocW=%.4f readHits=%.4f ssdWrites=%.4f ssdOps=%.4f\n",
			row.Policy, row.Hits, row.Misses, row.AllocWrites, row.ReadHits, row.SSDWrites, row.SSDOps)
	}
	section("F2a", "Block access-count distribution")
	fmt.Println(res.Fig2a())
	section("F2bc", "Block popularity CDF")
	fmt.Println(res.Fig2b())
	section("F3", "Popularity-skew variation")
	fmt.Println(res.Fig3())
	section("F5", "Sieving effectiveness: accesses captured")
	fmt.Println(res.Fig5())
	section("F6", "Sieving effectiveness: allocation-writes")
	fmt.Println(res.Fig6())
	section("F7", "Total SSD accesses")
	fmt.Println(res.Fig7())
	section("F8-F9", "Drive IOPS occupancy and drives needed")
	fmt.Println(res.Fig89())
	section("S5.3", "Ensemble vs per-server caching")
	fmt.Println(res.Sec53())
	section("S5.1", "Endurance")
	for _, p := range []int{exp.PSieveD, exp.PSieveC} {
		bytesPerDay, life := res.Endurance(p)
		fmt.Printf("%-14s writes %.2f TB/day at paper scale → %.0f-year lifetime on a 1 PB drive\n",
			exp.PolicyName(p), bytesPerDay/1e12, life)
	}
	section("LAT", "Derived mean access latency (extension)")
	fmt.Println(res.LatencyTable())
	section("S7", "Scaling projection & network feasibility")
	fmt.Println(res.ScalingReport())

	if !*skipSweeps {
		qs := *sweepScale
		if qs == 0 {
			qs = *scale * 8
		}
		qCfg := exp.DefaultConfig(qs)
		qCfg.Workload.Seed = *seed
		section("F1", fmt.Sprintf("Design-space quadrants (scale 1/%d)", qs))
		rows, err := exp.Quadrants(qCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(exp.FormatQuadrants(rows))
	}

	if *csvDir != "" {
		paths, err := res.ExportCSV(*csvDir)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nexported %d CSV series under %s\n", len(paths), *csvDir)
	}

	if !*skipSweeps {
		ss := *sweepScale
		if ss == 0 {
			ss = *scale * 8
		}
		sweepCfg := exp.DefaultConfig(ss)
		sweepCfg.Workload.Seed = *seed
		section("SENS", fmt.Sprintf("Sensitivity & ablations (scale 1/%d)", ss))
		dRows, err := exp.SensitivityD(sweepCfg, []int64{4, 6, 8, 10, 14, 20})
		if err != nil {
			log.Fatal(err)
		}
		wRows, err := exp.SensitivityCWindow(sweepCfg, []time.Duration{
			2 * time.Hour, 4 * time.Hour, 8 * time.Hour, 16 * time.Hour})
		if err != nil {
			log.Fatal(err)
		}
		aRows, err := exp.AblationSingleTier(sweepCfg)
		if err != nil {
			log.Fatal(err)
		}
		kRows, err := exp.AblationSubwindows(sweepCfg, []int{1, 2, 4, 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(exp.FormatSensitivity(dRows, wRows, aRows, kRows))
		rRows, err := exp.AblationReplacement(sweepCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(exp.FormatReplacement(rRows))
		oracleRows, err := exp.RunMinOracle(sweepCfg, 2)
		if err != nil {
			log.Fatal(err)
		}
		sieveDay, err := exp.SieveCDay(sweepCfg, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(exp.FormatOracle(oracleRows, sieveDay))
		seedRows, err := exp.SeedSweep(sweepCfg, []int64{1, 2, 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(exp.FormatSeedSweep(seedRows))
	}

	section("SUMMARY", "Headline results")
	fmt.Println(res.Summary())
}
