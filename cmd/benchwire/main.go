// Command benchwire measures wire-protocol throughput and tail latency:
// v1 vs v2 over loopback against an in-process appliance whose backend
// charges 1 ms per request (the regime where request overlap, not CPU,
// decides throughput). It emits machine-readable JSON for CI trend lines.
//
// Three configurations per client count, mirroring BenchmarkConcurrentAppliance:
//
//	v1/conn-per-client — legacy best case: one socket per client
//	v1/shared-conn     — one socket, mutex-serialized (the v2 motivation)
//	v2/shared-conn     — one socket, tagged pipelined frames
//
// Usage:
//
//	benchwire -duration 2s -clients 1,8,32 -out BENCH_wire.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/appliance"
	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/store"
)

type result struct {
	Proto   string  `json:"proto"`
	Mode    string  `json:"mode"`
	Clients int     `json:"clients"`
	Ops     int     `json:"ops"`
	OpsPerS float64 `json:"ops_per_s"`
	P50us   float64 `json:"p50_us"`
	P99us   float64 `json:"p99_us"`
}

type report struct {
	BackendLatencyMS float64  `json:"backend_latency_ms"`
	ReadBytes        int      `json:"read_bytes"`
	DurationS        float64  `json:"duration_s_per_cell"`
	Results          []result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchwire: ")
	var (
		duration = flag.Duration("duration", 2*time.Second, "measurement time per cell")
		clients  = flag.String("clients", "1,8,32", "comma-separated client counts")
		outPath  = flag.String("out", "BENCH_wire.json", "JSON output path")
	)
	flag.Parse()

	var counts []int
	for _, f := range strings.Split(*clients, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			log.Fatalf("bad -clients entry %q", f)
		}
		counts = append(counts, n)
	}

	rep := report{BackendLatencyMS: 1, ReadBytes: 4096, DurationS: duration.Seconds()}
	modes := []struct {
		name   string
		proto  int
		shared bool
	}{
		{"conn-per-client", appliance.ProtocolV1, false},
		{"shared-conn", appliance.ProtocolV1, true},
		{"shared-conn", appliance.ProtocolV2, true},
	}
	for _, m := range modes {
		proto := "v1"
		if m.proto == appliance.ProtocolV2 {
			proto = "v2"
		}
		for _, n := range counts {
			r, err := runCell(m.proto, m.shared, n, *duration)
			if err != nil {
				log.Fatalf("%s/%s clients=%d: %v", proto, m.name, n, err)
			}
			r.Proto, r.Mode, r.Clients = proto, m.name, n
			rep.Results = append(rep.Results, r)
			log.Printf("%-2s %-16s clients=%-3d %9.0f ops/s  p50 %7.0f µs  p99 %7.0f µs",
				proto, m.name, n, r.OpsPerS, r.P50us, r.P99us)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *outPath)
}

// runCell stands up a fresh server + store, drives it with n client
// goroutines for dur, and reports aggregate throughput and latency
// percentiles over the individual reads.
func runCell(proto int, shared bool, n int, dur time.Duration) (result, error) {
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<30)
	lat := store.NewLatency(mem)
	lat.PerRequest = time.Millisecond
	lat.PerByte = 0
	lat.Sleep = true
	st, err := core.Open(lat, core.Options{
		CacheBytes: 1 << 22,
		SieveC:     sieve.CConfig{IMCTSize: 1 << 16, T1: 2, T2: 2, Window: time.Hour, Subwindows: 4},
	})
	if err != nil {
		return result{}, err
	}
	defer st.Close()
	srv := appliance.NewServer(st)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return result{}, err
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(l) }()
	defer func() { srv.Close(); <-done }()

	conns := make([]*appliance.Client, n)
	dial := func() (*appliance.Client, error) {
		return appliance.DialWith(l.Addr().String(), appliance.DialOptions{Protocol: proto})
	}
	if shared {
		c, err := dial()
		if err != nil {
			return result{}, err
		}
		defer c.Close()
		for i := range conns {
			conns[i] = c
		}
	} else {
		for i := range conns {
			c, err := dial()
			if err != nil {
				return result{}, err
			}
			defer c.Close()
			conns[i] = c
		}
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		perGorou = make([][]time.Duration, n)
		firstErr = make(chan error, n)
	)
	deadline := time.Now().Add(dur)
	start := time.Now()
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int, c *appliance.Client) {
			defer wg.Done()
			buf := make([]byte, 4096)
			samples := make([]time.Duration, 0, 4096)
			for time.Now().Before(deadline) {
				i := next.Add(1) - 1
				off := uint64(i%(1<<16)) * 4096
				t0 := time.Now()
				if err := c.ReadAt(0, 0, buf, off); err != nil {
					select {
					case firstErr <- err:
					default:
					}
					return
				}
				samples = append(samples, time.Since(t0))
			}
			perGorou[g] = samples
		}(g, conns[g])
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-firstErr:
		return result{}, err
	default:
	}

	var all []time.Duration
	for _, s := range perGorou {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return result{}, fmt.Errorf("no ops completed")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Microsecond)
	}
	return result{
		Ops:     len(all),
		OpsPerS: float64(len(all)) / elapsed.Seconds(),
		P50us:   pct(0.50),
		P99us:   pct(0.99),
	}, nil
}
