// Command benchtier measures the RAM tier's cost-performance effect on a
// seeded Zipf workload: the same trace driven with the tier off, then at
// 5% and 10% of the SSD cache, in a read-only and a 7:3 read/write mix.
// It emits machine-readable JSON (BENCH_tier.json) for CI trend lines.
//
// The backend is in-memory, so the numbers isolate the cache stack's own
// per-op cost: a tier hit is a shared read lock plus one copy, an SSD hit
// is a shard mutex plus policy bookkeeping. The tier-hit fraction column
// shows how much of the Zipf head each tier size captures; the paper's
// selectivity argument predicts a few percent of capacity absorbing most
// of the accesses.
//
// Usage:
//
//	benchtier -duration 2s -out BENCH_tier.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/store"
)

const (
	spanBlocks  = 4096 // distinct blocks in the workload
	cacheBlocks = 512  // SSD tier capacity
	warmupOps   = 60000
)

type result struct {
	TierPct       int     `json:"tier_pct"`
	TierBytes     int64   `json:"tier_bytes"`
	Mix           string  `json:"mix"`
	Ops           int     `json:"ops"`
	OpsPerS       float64 `json:"ops_per_s"`
	P50us         float64 `json:"p50_us"`
	P99us         float64 `json:"p99_us"`
	HitRatio      float64 `json:"hit_ratio"`
	TierHitFrac   float64 `json:"tier_hit_frac"`
	Promotions    int64   `json:"tier_promotions"`
	Demotions     int64   `json:"tier_demotions"`
	Invalidations int64   `json:"tier_invalidations"`
}

type report struct {
	SpanBlocks  int      `json:"span_blocks"`
	CacheBlocks int      `json:"cache_blocks"`
	DurationS   float64  `json:"duration_s_per_cell"`
	Results     []result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtier: ")
	var (
		duration = flag.Duration("duration", 2*time.Second, "measurement time per cell")
		outPath  = flag.String("out", "BENCH_tier.json", "JSON output path")
	)
	flag.Parse()

	rep := report{SpanBlocks: spanBlocks, CacheBlocks: cacheBlocks, DurationS: duration.Seconds()}
	for _, pct := range []int{0, 5, 10} {
		tierBytes := int64(cacheBlocks*pct/100) * block.Size
		for _, mix := range []string{"read", "readwrite"} {
			r, err := runCell(tierBytes, mix == "readwrite", *duration)
			if err != nil {
				log.Fatalf("tier=%d%% %s: %v", pct, mix, err)
			}
			r.TierPct, r.TierBytes, r.Mix = pct, tierBytes, mix
			rep.Results = append(rep.Results, r)
			log.Printf("tier=%2d%% %-9s %9.0f ops/s  p50 %6.1f µs  p99 %6.1f µs  hit %.4f  tier-frac %.4f",
				pct, mix, r.OpsPerS, r.P50us, r.P99us, r.HitRatio, r.TierHitFrac)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *outPath)
}

// runCell opens a fresh store with the given tier size, replays a seeded
// Zipf warmup so the sieve admits and the promotion filter fills the
// tier, then measures per-op latency on the same distribution for dur.
func runCell(tierBytes int64, writes bool, dur time.Duration) (result, error) {
	mem := store.NewMem()
	mem.AddVolume(0, 0, (spanBlocks+4)*block.Size)
	st, err := core.Open(mem, core.Options{
		CacheBytes:   cacheBlocks * block.Size,
		Shards:       8,
		Policy:       "sieve",
		RAMTierBytes: tierBytes,
		SieveC: sieve.CConfig{
			IMCTSize: 1 << 12, T1: 3, T2: 2,
			Window: 2 * time.Minute, Subwindows: 4,
		},
	})
	if err != nil {
		return result{}, err
	}
	defer st.Close()

	r := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(r, 1.2, 1, spanBlocks-1)
	wbuf := bytes.Repeat([]byte{0xC3}, block.Size)
	rbuf := make([]byte, block.Size)
	op := func() error {
		off := zipf.Uint64() * block.Size
		if writes && r.Intn(10) >= 7 {
			return st.WriteAt(0, 0, wbuf, off)
		}
		return st.ReadAt(0, 0, rbuf, off)
	}
	for i := 0; i < warmupOps; i++ {
		if err := op(); err != nil {
			return result{}, fmt.Errorf("warmup op %d: %w", i, err)
		}
	}

	base := st.Stats()
	samples := make([]time.Duration, 0, 1<<20)
	deadline := time.Now().Add(dur)
	start := time.Now()
	for time.Now().Before(deadline) {
		t0 := time.Now()
		if err := op(); err != nil {
			return result{}, err
		}
		samples = append(samples, time.Since(t0))
	}
	elapsed := time.Since(start)
	stats := st.Stats()

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(samples)-1))
		return float64(samples[i]) / float64(time.Microsecond)
	}
	reads := stats.Reads - base.Reads
	res := result{
		Ops:           len(samples),
		OpsPerS:       float64(len(samples)) / elapsed.Seconds(),
		P50us:         pct(0.50),
		P99us:         pct(0.99),
		Promotions:    stats.TierPromotions - base.TierPromotions,
		Demotions:     stats.TierDemotions - base.TierDemotions,
		Invalidations: stats.TierInvalidations - base.TierInvalidations,
	}
	if reads > 0 {
		res.HitRatio = float64(stats.ReadHits-base.ReadHits) / float64(reads)
		res.TierHitFrac = float64(stats.TierHits-base.TierHits) / float64(reads)
	}
	return res, nil
}
