// Command traceconv converts block traces between the supported formats:
// MSR-style CSV, the compact binary format, and day-split directories. It
// is the on-ramp for running this repository's experiments on real
// MSR-Cambridge traces:
//
//	traceconv -in msr_week.csv -informat csv -out days/ -outformat daydir
//	sievesim -policy sievec -in days/
//
// Conversions:
//
//	traceconv -in trace.csv -informat csv -out trace.bin -outformat bin
//	traceconv -in trace.bin -informat bin -out - -outformat csv
//	traceconv -in days/ -informat daydir -out trace.csv -outformat csv
//
// The MSR distribution ships one CSV per volume; pass a glob (quoted) to
// merge them time-ordered in one pass:
//
//	traceconv -in 'msr/*.csv' -informat csv -out days/ -outformat daydir
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceconv: ")
	var (
		in        = flag.String("in", "", "input file or day directory ('-' for stdin)")
		informat  = flag.String("informat", "csv", "input format: csv, bin, daydir")
		out       = flag.String("out", "-", "output file or directory ('-' for stdout)")
		outformat = flag.String("outformat", "bin", "output format: csv, bin, daydir")
		epoch     = flag.Int64("epoch", 0, "FILETIME tick value treated as time zero when reading CSV (0: timestamps are already relative)")
		sortDays  = flag.Bool("sort", true, "sort day files by time after a daydir conversion")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("-in is required")
	}

	names := &trace.NameTable{}
	reader, closeIn, err := openReader(*in, *informat, names, *epoch)
	if err != nil {
		log.Fatal(err)
	}
	defer closeIn()

	switch *outformat {
	case "daydir":
		n, err := trace.SplitByDay(reader, *out)
		if err != nil {
			log.Fatal(err)
		}
		if *sortDays {
			dd, err := trace.OpenDayDir(*out)
			if err != nil {
				log.Fatal(err)
			}
			if err := dd.SortDayFiles(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "traceconv: wrote %d day files under %s\n", n, *out)
		return
	case "csv", "bin":
		var w io.Writer = os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer func() {
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
			}()
			w = f
		}
		var sink trace.Writer
		var flush func() error
		if *outformat == "csv" {
			cw := trace.NewCSVWriter(w, names, *epoch)
			sink, flush = cw, cw.Flush
		} else {
			bw := trace.NewBinaryWriter(w)
			sink, flush = bw, bw.Flush
		}
		var total int64
		for {
			req, err := reader.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			if err := sink.Write(req); err != nil {
				log.Fatal(err)
			}
			total++
		}
		if err := flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "traceconv: wrote %d requests\n", total)
	default:
		log.Fatalf("unknown output format %q", *outformat)
	}
}

func openReader(in, format string, names *trace.NameTable, epoch int64) (trace.Reader, func(), error) {
	noop := func() {}
	switch format {
	case "daydir":
		dd, err := trace.OpenDayDir(in)
		if err != nil {
			return nil, noop, err
		}
		return dd.Reader(), noop, nil
	case "csv", "bin":
		if in == "-" {
			if format == "csv" {
				return trace.NewCSVReader(os.Stdin, names, epoch), noop, nil
			}
			return trace.NewBinaryReader(os.Stdin), noop, nil
		}
		paths, err := filepath.Glob(in)
		if err != nil {
			return nil, noop, err
		}
		if len(paths) == 0 {
			return nil, noop, fmt.Errorf("no input matches %q", in)
		}
		sort.Strings(paths)
		var files []*os.File
		var readers []trace.Reader
		for _, path := range paths {
			f, err := os.Open(path)
			if err != nil {
				for _, open := range files {
					open.Close()
				}
				return nil, noop, err
			}
			files = append(files, f)
			if format == "csv" {
				readers = append(readers, trace.NewCSVReader(f, names, epoch))
			} else {
				readers = append(readers, trace.NewBinaryReader(f))
			}
		}
		closeFn := func() {
			for _, f := range files {
				f.Close()
			}
		}
		if len(readers) == 1 {
			return readers[0], closeFn, nil
		}
		// Per-volume files are individually time-ordered; a k-way merge
		// yields the ensemble stream in one pass.
		return trace.Merge(readers...), closeFn, nil
	default:
		return nil, noop, fmt.Errorf("unknown input format %q", format)
	}
}
