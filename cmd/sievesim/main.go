// Command sievesim runs one cache-allocation policy over the synthetic
// ensemble trace and reports per-day hit ratios, allocation-writes, and
// drive-occupancy figures — a single cell of the paper's evaluation matrix.
//
// Usage:
//
//	sievesim -policy sievec -scale 4096 -cachegb 16
//	sievesim -policy wmna -cachegb 32
//	sievesim -policy sieved -threshold 10
//	sievesim -policy ideal
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/metrics"
	"repro/internal/sieve"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sievesim: ")
	var (
		policy    = flag.String("policy", "sievec", "policy: sievec, sieved, aod, wmna, randc, randblkd, ideal, singletier, adaptive, perserver")
		scale     = flag.Int("scale", 4096, "trace scale divisor")
		seed      = flag.Int64("seed", 1, "trace seed")
		cacheGB   = flag.Float64("cachegb", 16, "cache size in GB (scaled)")
		threshold = flag.Int64("threshold", 10, "SieveStore-D epoch threshold")
		topFrac   = flag.Float64("top", 0.01, "ideal sieve popularity cut")
		randP     = flag.Float64("randp", 0.01, "random sieve allocation fraction")
		in        = flag.String("in", "", "day-split trace directory (see tracegen -split); empty generates synthetically")
	)
	flag.Parse()

	cfg := workload.Default(*scale)
	cfg.Seed = *seed
	var tr sim.Trace
	if *in != "" {
		dd, err := trace.OpenDayDir(*in)
		if err != nil {
			log.Fatal(err)
		}
		tr = dd
	} else {
		gen, err := workload.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		tr = gen
	}
	capacityBlocks := int(*cacheGB * (1 << 30) / 512 / float64(*scale))
	if capacityBlocks < 8 {
		capacityBlocks = 8
	}

	var (
		res *sim.Result
		err error
	)
	switch *policy {
	case "sievec", "singletier":
		sc := sieve.DefaultCConfig()
		sc.IMCTSize = 1 << 28 / *scale
		if sc.IMCTSize < 1024 {
			sc.IMCTSize = 1024
		}
		var p sieve.Policy
		if *policy == "sievec" {
			p, err = sieve.NewC(sc)
		} else {
			p, err = sieve.NewSingleTier(sc)
		}
		if err != nil {
			log.Fatal(err)
		}
		res, err = sim.RunContinuous(tr, capacityBlocks, p)
	case "adaptive":
		acfg := sieve.DefaultAdaptiveConfig()
		acfg.Base.IMCTSize = 1 << 28 / *scale
		if acfg.Base.IMCTSize < 1024 {
			acfg.Base.IMCTSize = 1024
		}
		var p *sieve.Adaptive
		p, err = sieve.NewAdaptive(acfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err = sim.RunContinuous(tr, capacityBlocks, p)
		if err == nil {
			fmt.Printf("adaptive sieve: final T2=%d after %d adjustments\n", p.T2(), p.Adjustments())
		}
	case "perserver":
		// Quadrant IV: one private SieveStore-C cache per server, the total
		// capacity split evenly.
		servers := len(cfg.Servers)
		factory := func(int) (sieve.Policy, error) {
			sc := sieve.DefaultCConfig()
			sc.IMCTSize = 1 << 28 / *scale / servers
			if sc.IMCTSize < 256 {
				sc.IMCTSize = 256
			}
			return sieve.NewC(sc)
		}
		var perServer []*sim.Result
		res, perServer, err = sim.RunPerServerContinuous(tr, servers, capacityBlocks, factory)
		if err == nil {
			spec := ssd.IntelX25E()
			scaled := make([]*sim.Result, len(perServer))
			for i, r := range perServer {
				scaled[i] = &sim.Result{Name: r.Name, Days: r.Days,
					Minutes: metrics.ScaleLoads(r.Minutes, float64(*scale))}
			}
			fmt.Printf("per-server drives @99.9%% coverage (one device per server): %d\n",
				sim.PerServerDriveNeeds(&spec, scaled, 0.999))
		}
	case "aod":
		res, err = sim.RunContinuous(tr, capacityBlocks, sieve.AOD{})
	case "wmna":
		res, err = sim.RunContinuous(tr, capacityBlocks, sieve.WMNA{})
	case "randc":
		res, err = sim.RunContinuous(tr, capacityBlocks, sieve.NewRandC(*randP, *seed))
	case "sieved":
		dir, derr := os.MkdirTemp("", "sievesim-*")
		if derr != nil {
			log.Fatal(derr)
		}
		defer os.RemoveAll(dir)
		res, err = sim.RunSieveStoreD(tr, capacityBlocks, *threshold, dir)
	case "ideal":
		counters, cerr := sim.DayCounters(tr)
		if cerr != nil {
			log.Fatal(cerr)
		}
		res, err = sim.RunIdeal(tr, counters, capacityBlocks, *topFrac)
	case "randblkd":
		counters, cerr := sim.DayCounters(tr)
		if cerr != nil {
			log.Fatal(cerr)
		}
		res, err = sim.RunRandBlkD(tr, counters, capacityBlocks, *randP, *seed)
	default:
		log.Fatalf("unknown policy %q", *policy)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy=%s cache=%d blocks (%.0f GB-equivalent at scale 1/%d)\n\n",
		res.Name, capacityBlocks, *cacheGB, *scale)
	fmt.Printf("%-5s %12s %10s %10s %10s %12s %10s %8s\n",
		"Day", "Accesses", "ReadHits", "WriteHits", "AllocWr", "Moves", "Evict", "Hit%")
	for _, d := range res.Days {
		fmt.Printf("%-5d %12d %10d %10d %10d %12d %10d %8.2f\n",
			d.Day, d.Accesses, d.ReadHits, d.WriteHits, d.AllocWrites, d.Moves, d.Evictions, 100*d.HitRatio())
	}
	t := res.Total()
	fmt.Printf("%-5s %12d %10d %10d %10d %12d %10d %8.2f\n",
		"All", t.Accesses, t.ReadHits, t.WriteHits, t.AllocWrites, t.Moves, t.Evictions, 100*t.HitRatio())

	spec := ssd.IntelX25E()
	loads := metrics.ScaleLoads(res.Minutes, float64(*scale))
	occ := ssd.OccupancySeries(&spec, loads)
	maxOcc := 0.0
	for _, o := range occ {
		if o > maxOcc {
			maxOcc = o
		}
	}
	fmt.Printf("\ndrive occupancy (paper-scale, %s): max=%.2f under-1=%.2f%%\n",
		spec.Name, maxOcc, 100*ssd.FractionUnderOccupancy(occ, 1))
	for _, p := range ssd.CoverageTable(&spec, loads) {
		fmt.Printf("  drives @%5.1f%% coverage: %d\n", 100*p.Coverage, p.Drives)
	}
}
