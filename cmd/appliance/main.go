// Command appliance runs SieveStore as a standalone TCP block-caching
// appliance daemon (the paper's deployment model, Figure 4): block I/O from
// ensemble servers arrives over the wire, popular blocks are served from
// the cache, everything else is forwarded to the backing store.
//
// The demo backend is the in-memory ensemble; swapping in a real backend
// means implementing core.Backend. The cache survives restarts via a
// snapshot written on SIGINT/SIGTERM and loaded at boot.
//
// Usage:
//
//	appliance -listen :9000 -cache-mb 64 -servers 4 -volume-mb 1024
//	appliance -listen :9000 -policy sieve -shards 8
//	appliance -listen :9000 -variant d -epoch 24h -snapshot /var/lib/sieve.snap
//	appliance -listen :9000 -shards 8 -pprof 127.0.0.1:6060 -mutex-profile-fraction 5
//	appliance -listen :9000 -backend-timeout 2s -retries 3 -max-conns 256 -idle-timeout 5m
//	appliance -listen :9000 -metrics 127.0.0.1:9100 -trace-sample 64
//	appliance -listen :9000 -ram-tier-mb 4 -tier-promote-hits 2
//	appliance -listen :9000 -variant d -ram-tier-mb 4 -tier-autotune -tier-min-mb 1 -tier-max-mb 16
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // handlers on DefaultServeMux; only served when -pprof is set
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/appliance"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/sieve"
	"repro/internal/store"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("appliance: ")
	var (
		listen    = flag.String("listen", "127.0.0.1:9000", "TCP listen address")
		cacheMB   = flag.Int64("cache-mb", 64, "cache size in MiB")
		variant   = flag.String("variant", "c", "sieve variant: c or d")
		policy    = flag.String("policy", "lru", "cache eviction policy: lru, sieve, s3fifo, fifo, or clock")
		epoch     = flag.Duration("epoch", 24*time.Hour, "SieveStore-D epoch length")
		threshold = flag.Int64("threshold", 10, "SieveStore-D epoch access-count threshold")
		writeBack = flag.Bool("writeback", false, "enable write-back caching")
		snapshot  = flag.String("snapshot", "", "snapshot file: loaded at boot if present, written on shutdown")
		spillDir  = flag.String("spill", "", "SieveStore-D spill directory (resumed across restarts)")
		servers   = flag.Int("servers", 4, "demo backend: number of servers")
		volumeMB  = flag.Int64("volume-mb", 1024, "demo backend: per-server volume size in MiB")
		dataDir   = flag.String("data", "", "back volumes with sparse files under this directory (empty: in-memory)")
		statsEach = flag.Duration("stats", time.Minute, "stats logging interval (0 disables)")
		trackLat  = flag.Bool("track-latency", true, "record per-op read/write service times (reported in stats)")
		shards    = flag.Int("shards", 0, "store lock shards, power of two (0: one per CPU)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (empty: disabled)")

		metricsAddr = flag.String("metrics", "", "serve /metrics (Prometheus), /statusz (JSON), and /debug/ops on this address (empty: disabled)")
		traceSample = flag.Int("trace-sample", 0, "sample one in N operations into the /debug/ops lifecycle trace ring (0: off)")
		traceRing   = flag.Int("trace-ring", 256, "sampled-op trace ring size")
		mutexFrac   = flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction rate for /debug/pprof/mutex (0: off)")

		backendTimeout = flag.Duration("backend-timeout", 0, "deadline per backend request attempt (0: none; enables the fault-tolerant backend wrapper)")
		retries        = flag.Int("retries", 0, "retries per backend op on transient errors (0: none; enables the fault-tolerant backend wrapper)")
		maxConns       = flag.Int("max-conns", 0, "cap on concurrently served connections; extras get a busy error (0: unlimited)")
		idleTimeout    = flag.Duration("idle-timeout", 0, "drop connections idle this long between requests (0: never)")

		tenantTrack       = flag.Bool("tenant-track", false, "per-tenant (server, volume) accounting: occupancy, hit ratios, alloc-writes (observe-only)")
		tenantQuotas      = flag.Bool("tenant-quotas", false, "enforce per-tenant soft capacity quotas, repartitioned by realized reuse (implies -tenant-track)")
		enduranceMBPerDay = flag.Int64("endurance-mb-per-day", 0, "SSD endurance envelope in MiB/day, split across tenants as per-tenant alloc-write token buckets (0: off; implies -tenant-track)")
		repartitionEvery  = flag.Duration("tenant-repartition-every", 0, "time-driven quota repartition interval (0: default 1m; negative: epoch boundaries only)")

		ramTierMB    = flag.Int64("ram-tier-mb", 0, "in-process RAM hot tier above the SSD cache, in MiB (0: disabled)")
		promoteHits  = flag.Int("tier-promote-hits", 0, "repeated SSD read hits before a block is promoted to the RAM tier (0: default)")
		tierAutotune = flag.Bool("tier-autotune", false, "resize the RAM tier at epoch boundaries per the cost advisor (variant d only)")
		tierMinMB    = flag.Int64("tier-min-mb", 0, "autotune lower bound for the RAM tier, in MiB (0: default)")
		tierMaxMB    = flag.Int64("tier-max-mb", 0, "autotune upper bound for the RAM tier, in MiB (0: cache size)")

		protocol    = flag.String("protocol", "v2", "max wire protocol version: v2 (tagged pipelined frames, negotiated down per client) or v1 (legacy-exact)")
		groupCommit = flag.Duration("group-commit-window", 0, "coalesce write-back flush requests arriving within this window into one backend sweep (0: flush immediately)")
		maxPipeline = flag.Int("max-pipeline", 0, "per-connection cap on in-flight pipelined v2 requests (0: default 32)")

		clusterPeers       = flag.String("cluster-peers", "", "comma-separated appliance addresses: run as a replicated-cluster gateway over these nodes instead of a local store")
		clusterReplicas    = flag.Int("cluster-replicas", 2, "gateway: replicas per block (R)")
		clusterQuorum      = flag.Int("cluster-write-quorum", 1, "gateway: direct acks required per write (W, ≤ R)")
		clusterWriteBack   = flag.Bool("cluster-writeback", false, "gateway: peers run write-back stores (track acked replicas, re-replicate after failures)")
		clusterPlacement   = flag.Int("cluster-placement-blocks", 128, "gateway: consecutive blocks sharing a replica set (power of two)")
		clusterHandoffMax  = flag.Int("cluster-handoff-max", 4096, "gateway: per-node hinted-handoff queue bound, in blocks")
		clusterProbeEvery  = flag.Duration("cluster-probe-every", 250*time.Millisecond, "gateway: down-node probe / repair-sweep cadence")
		clusterDialTimeout = flag.Duration("cluster-timeout", 2*time.Second, "gateway: per-op deadline on node connections")
	)
	flag.Parse()

	if *pprofAddr != "" {
		if *mutexFrac > 0 {
			runtime.SetMutexProfileFraction(*mutexFrac)
		}
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	var maxProto int
	switch *protocol {
	case "v2", "2", "":
		maxProto = appliance.ProtocolV2
	case "v1", "1":
		maxProto = appliance.ProtocolV1
	default:
		log.Fatalf("unknown -protocol %q (want v1 or v2)", *protocol)
	}
	srvOpts := appliance.ServerOptions{
		MaxConns:    *maxConns,
		IdleTimeout: *idleTimeout,
		MaxProtocol: maxProto,
		MaxPipeline: *maxPipeline,
	}

	// Gateway mode: no local store — the data path is the replicated ring.
	if *clusterPeers != "" {
		runGateway(gatewayConfig{
			listen:      *listen,
			metricsAddr: *metricsAddr,
			statsEach:   *statsEach,
			srvOpts:     srvOpts,
			cluster: cluster.Config{
				Nodes:           strings.Split(*clusterPeers, ","),
				Replicas:        *clusterReplicas,
				WriteQuorum:     *clusterQuorum,
				WriteBack:       *clusterWriteBack,
				PlacementBlocks: *clusterPlacement,
				HandoffMax:      *clusterHandoffMax,
				ProbeEvery:      *clusterProbeEvery,
				Dial:            appliance.DialOptions{Timeout: *clusterDialTimeout},
			},
		})
		return
	}

	var backend core.Backend
	if *dataDir != "" {
		fb, err := store.NewFile(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		defer fb.Close()
		for s := 0; s < *servers; s++ {
			if err := fb.AddVolume(s, 0, uint64(*volumeMB)<<20); err != nil {
				log.Fatal(err)
			}
		}
		backend = fb
	} else {
		mem := store.NewMem()
		for s := 0; s < *servers; s++ {
			mem.AddVolume(s, 0, uint64(*volumeMB)<<20)
		}
		backend = mem
	}

	// Harden the backend when asked: per-attempt deadlines, transient-error
	// retries, and per-(server, volume) circuit breakers between the cache
	// and the ensemble.
	var res *resilience.Resilient
	if *backendTimeout > 0 || *retries > 0 {
		res = resilience.Wrap(backend, resilience.Config{
			Timeout: *backendTimeout,
			Retry:   resilience.RetryPolicy{Max: *retries},
		})
		backend = res
	}

	nShards := *shards
	if nShards == 0 {
		nShards = core.DefaultShards()
	}
	opts := core.Options{
		CacheBytes:        *cacheMB << 20,
		WriteBack:         *writeBack,
		TrackLatency:      *trackLat,
		Shards:            nShards,
		Policy:            *policy,
		TraceSample:       *traceSample,
		TraceRingSize:     *traceRing,
		GroupCommitWindow: *groupCommit,
		RAMTierBytes:      *ramTierMB << 20,
		TierPromoteHits:   *promoteHits,
		TierAutotune:      *tierAutotune,
		TierMinBytes:      *tierMinMB << 20,
		TierMaxBytes:      *tierMaxMB << 20,

		TenantTracking:         *tenantTrack,
		TenantQuotas:           *tenantQuotas,
		EnduranceBytesPerDay:   *enduranceMBPerDay << 20,
		TenantRepartitionEvery: *repartitionEvery,
	}
	switch *variant {
	case "c":
		opts.Variant = core.VariantC
		opts.SieveC = sieve.DefaultCConfig()
	case "d":
		opts.Variant = core.VariantD
		opts.Epoch = *epoch
		opts.DThreshold = *threshold
		opts.SpillDir = *spillDir
	default:
		log.Fatalf("unknown variant %q", *variant)
	}
	st, err := core.Open(backend, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			if err := st.LoadSnapshot(f); err != nil {
				log.Printf("snapshot load failed (starting cold): %v", err)
			} else {
				log.Printf("warm start: %d blocks restored", st.Stats().CachedBlocks)
			}
			f.Close()
		}
	}

	srv := appliance.NewServerWith(st, srvOpts)

	if *metricsAddr != "" {
		obs := appliance.NewObservability(st)
		obs.AttachServer(srv)
		if res != nil {
			obs.AttachResilience(res)
		}
		go func() {
			log.Printf("observability listening on %s (/metrics, /statusz, /debug/ops)", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, obs.Handler()); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*listen) }()
	log.Printf("%s serving on %s (cache %d MiB, policy %s, %d shards, %d servers × %d MiB, write-back=%v)",
		st.Variant(), *listen, *cacheMB, st.Policy(), st.Shards(), *servers, *volumeMB, *writeBack)

	if *statsEach > 0 {
		go func() {
			for range time.Tick(*statsEach) {
				s := st.Stats()
				line := fmt.Sprintf("stats: accesses=%d hit=%.1f%% cached=%d/%d dirty=%d allocW=%d epochs=%d coalesced=%d",
					s.Reads+s.Writes, 100*s.HitRatio(), s.CachedBlocks, s.CapacityBlocks,
					s.DirtyBlocks, s.AllocWrites, s.Epochs, s.CoalescedReads)
				if s.SelectOverflow > 0 {
					line += fmt.Sprintf(" selOverflow=%d", s.SelectOverflow)
				}
				if s.FlushErrors > 0 || s.RotateFailures > 0 || s.ResetFailures > 0 {
					line += fmt.Sprintf(" flushErr=%d rotateFail=%d resetFail=%d",
						s.FlushErrors, s.RotateFailures, s.ResetFailures)
				}
				if ts, ok := st.TierStats(); ok {
					line += fmt.Sprintf(" tierHits=%d tierCached=%d/%d tierPromo=%d tierDemo=%d",
						ts.Hits, ts.CachedBlocks, ts.CapacityBlocks, ts.Promotions, ts.Demotions)
					if ts.Resizes > 0 {
						line += fmt.Sprintf(" tierResizes=%d", ts.Resizes)
					}
				}
				if s.Tenants > 0 {
					line += fmt.Sprintf(" tenants=%d", s.Tenants)
					if s.QuotaDenials > 0 || s.ThrottleDenials > 0 || s.TenantClips > 0 {
						line += fmt.Sprintf(" quotaDeny=%d throttleDeny=%d tenantClips=%d",
							s.QuotaDenials, s.ThrottleDenials, s.TenantClips)
					}
				}
				if s.Degraded || s.DegradedEnters > 0 || s.SpillDisables > 0 {
					line += fmt.Sprintf(" degraded=%v bypassR=%d bypassW=%d cacheFaults=%d spillDisables=%d",
						s.Degraded, s.BypassReads, s.BypassWrites, s.CacheFaults, s.SpillDisables)
				}
				if res != nil {
					r := res.Stats()
					line += fmt.Sprintf(" retries=%d timeouts=%d breakerOpen=%d breakerTrips=%d fastFails=%d",
						r.Retries, r.Timeouts, r.OpenDevices, r.BreakerTrips, r.BreakerFastFails)
				}
				if n := srv.BusyRejects(); n > 0 {
					line += fmt.Sprintf(" busyRejects=%d", n)
				}
				if *trackLat {
					line += fmt.Sprintf(" rdLat=%v/%v wrLat=%v/%v",
						s.ReadLatency.Mean().Round(time.Microsecond), time.Duration(s.ReadLatency.MaxNanos).Round(time.Microsecond),
						s.WriteLatency.Mean().Round(time.Microsecond), time.Duration(s.WriteLatency.MaxNanos).Round(time.Microsecond))
				}
				log.Print(line)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatalf("serve: %v", err)
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
	}

	if err := srv.Close(); err != nil {
		log.Printf("server close: %v", err)
	}
	if *snapshot != "" {
		if err := writeSnapshot(st, *snapshot); err != nil {
			log.Printf("snapshot save failed: %v", err)
		} else {
			log.Printf("snapshot saved to %s", *snapshot)
		}
	}
	if err := st.Close(); err != nil {
		log.Printf("store close: %v", err)
	}
}

type gatewayConfig struct {
	listen      string
	metricsAddr string
	statsEach   time.Duration
	srvOpts     appliance.ServerOptions
	cluster     cluster.Config
}

// runGateway fronts a replicated ring of appliance nodes with the same
// wire protocol a single appliance speaks: ensemble servers connect to
// the gateway, which routes, replicates, and fails over per block.
func runGateway(cfg gatewayConfig) {
	cl, err := cluster.New(cfg.cluster)
	if err != nil {
		log.Fatal(err)
	}
	srv := appliance.NewServerWith(cl, cfg.srvOpts)

	if cfg.metricsAddr != "" {
		go func() {
			log.Printf("cluster observability listening on %s (/metrics, /statusz)", cfg.metricsAddr)
			if err := http.ListenAndServe(cfg.metricsAddr, cl.Handler()); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(cfg.listen) }()
	log.Printf("cluster gateway serving on %s (%d nodes, R=%d W=%d write-back=%v)",
		cfg.listen, len(cfg.cluster.Nodes), cfg.cluster.Replicas, cfg.cluster.WriteQuorum, cfg.cluster.WriteBack)

	if cfg.statsEach > 0 {
		go func() {
			for range time.Tick(cfg.statsEach) {
				s := cl.ClusterStats()
				up := 0
				for _, n := range s.Nodes {
					if n.State == "up" {
						up++
					}
				}
				log.Printf("cluster: nodes=%d/%d reads=%d writes=%d fallthrough=%d hinted=%d drained=%d rebalanced=%d underRepl=%d hints=%d quorumFail=%d",
					up, s.RingSize, s.Reads, s.Writes, s.Fallthroughs, s.Hinted, s.Drained,
					s.Rebalanced, s.UnderReplicated, s.HintDepth, s.QuorumFailures)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		log.Fatalf("serve: %v", err)
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
	}
	if err := srv.Close(); err != nil {
		log.Printf("server close: %v", err)
	}
	// Settle the ring before dropping connections: deliver pending hints
	// and push dirty replicas down to the ensemble.
	if err := cl.Flush(); err != nil {
		log.Printf("cluster flush: %v", err)
	}
	if err := cl.Close(); err != nil {
		log.Printf("cluster close: %v", err)
	}
}

// writeSnapshot saves atomically via a temp file + rename.
func writeSnapshot(st *core.Store, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := st.SaveSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
