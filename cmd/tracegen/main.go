// Command tracegen synthesizes an MSR-Cambridge-style block-access trace of
// the paper's 13-server storage ensemble and writes it in CSV (MSR schema)
// or the compact binary format.
//
// Usage:
//
//	tracegen -scale 4096 -days 8 -format csv -out trace.csv
//	tracegen -scale 512 -format bin -out trace.bin
//	tracegen -out - | head
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		scale      = flag.Int("scale", workload.DefaultScale, "trace scale divisor (1 = paper volume)")
		days       = flag.Int("days", 8, "calendar days to generate")
		seed       = flag.Int64("seed", 1, "generator seed")
		format     = flag.String("format", "csv", "output format: csv or bin")
		out        = flag.String("out", "-", "output file ('-' for stdout)")
		split      = flag.String("split", "", "instead of one file, write per-day binary files into this directory")
		config     = flag.String("config", "", "JSON ensemble configuration (see -dump-config); flags override scale/days/seed")
		dumpConfig = flag.Bool("dump-config", false, "print the default ensemble configuration as JSON and exit")
	)
	flag.Parse()

	cfg := workload.Default(*scale)
	if *config != "" {
		loaded, err := workload.LoadConfig(*config)
		if err != nil {
			log.Fatal(err)
		}
		cfg = loaded
		// Explicitly passed flags override the file.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scale":
				cfg.Scale = *scale
			case "days":
				cfg.Days = *days
			case "seed":
				cfg.Seed = *seed
			}
		})
	} else {
		cfg.Days = *days
		cfg.Seed = *seed
	}
	if *dumpConfig {
		data, err := workload.EncodeConfig(cfg)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		return
	}
	gen, err := workload.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *split != "" {
		n, err := trace.SplitByDay(gen.Reader(), *split)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d day files under %s\n", n, *split)
		return
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}

	var sink trace.Writer
	var flush func() error
	switch *format {
	case "csv":
		cw := trace.NewCSVWriter(w, gen.Names(), 0)
		sink, flush = cw, cw.Flush
	case "bin":
		bw := trace.NewBinaryWriter(w)
		sink, flush = bw, bw.Flush
	default:
		log.Fatalf("unknown format %q (want csv or bin)", *format)
	}

	var total int64
	r := gen.Reader()
	for {
		req, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := sink.Write(req); err != nil {
			log.Fatal(err)
		}
		total++
	}
	if err := flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d requests (%d days, scale 1/%d)\n", total, *days, *scale)
}
