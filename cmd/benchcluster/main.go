// Command benchcluster measures the replicated cluster mode's scale-out
// and degraded-mode cost: an in-process ring of real appliance nodes
// (loopback TCP, v2 pipelined protocol) is driven by concurrent mixed
// read/write workers at N = 1, 3, 5 nodes, first healthy and then with
// one node killed mid-ring. It emits machine-readable JSON
// (BENCH_cluster.json) for CI trend lines.
//
// The backend is one shared in-memory ensemble, so the numbers isolate
// the cluster layer's own cost: rendezvous routing, R-way replication
// fan-out, quorum accounting, and — in the killed rows — breaker-guarded
// read fall-through plus hinted handoff on the write path.
//
// Usage:
//
//	benchcluster -duration 2s -workers 8 -out BENCH_cluster.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/appliance"
	"repro/internal/block"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/store"
)

const (
	spanBlocks = 4096 // distinct blocks in the workload
	volBytes   = (spanBlocks + 4) * block.Size
)

type result struct {
	Nodes    int     `json:"nodes"`
	Replicas int     `json:"replicas"`
	Mode     string  `json:"mode"` // healthy | one-killed
	Workers  int     `json:"workers"`
	Ops      int     `json:"ops"`
	OpsPerS  float64 `json:"ops_per_s"`
	P50us    float64 `json:"p50_us"`
	P99us    float64 `json:"p99_us"`
	Errors   int64   `json:"op_errors"`
	Hinted   int64   `json:"hinted"`
	Fallthru int64   `json:"read_fallthroughs"`
}

type report struct {
	SpanBlocks int      `json:"span_blocks"`
	DurationS  float64  `json:"duration_s_per_cell"`
	Results    []result `json:"results"`
}

// bNode is one in-process appliance: a write-back store over the shared
// ensemble behind a real TCP server.
type bNode struct {
	st   *core.Store
	srv  *appliance.Server
	addr string
	done chan struct{}
}

func startNode(be *store.Mem) (*bNode, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	st, err := core.Open(be, core.Options{
		CacheBytes: 8 << 20,
		WriteBack:  true,
		Shards:     8,
		SieveC: sieve.CConfig{
			IMCTSize: 1 << 12, T1: 1, T2: 1,
			Window: time.Hour, Subwindows: 4,
		},
	})
	if err != nil {
		l.Close()
		return nil, err
	}
	srv := appliance.NewServer(st)
	n := &bNode{st: st, srv: srv, addr: l.Addr().String(), done: make(chan struct{})}
	go func() {
		defer close(n.done)
		srv.Serve(l)
	}()
	return n, nil
}

func (n *bNode) kill() {
	n.srv.Close()
	<-n.done
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcluster: ")
	var (
		duration = flag.Duration("duration", 2*time.Second, "measurement time per cell")
		workers  = flag.Int("workers", 8, "concurrent client workers")
		outPath  = flag.String("out", "BENCH_cluster.json", "JSON output path")
	)
	flag.Parse()

	rep := report{SpanBlocks: spanBlocks, DurationS: duration.Seconds()}
	for _, n := range []int{1, 3, 5} {
		for _, killed := range []bool{false, true} {
			if killed && n == 1 {
				continue // a 1-node ring with its node killed serves nothing
			}
			r, err := runCell(n, killed, *workers, *duration)
			if err != nil {
				log.Fatalf("nodes=%d killed=%v: %v", n, killed, err)
			}
			rep.Results = append(rep.Results, r)
			log.Printf("nodes=%d %-10s %9.0f ops/s  p50 %6.1f µs  p99 %7.1f µs  errs %d  hinted %d  fallthru %d",
				r.Nodes, r.Mode, r.OpsPerS, r.P50us, r.P99us, r.Errors, r.Hinted, r.Fallthru)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*outPath, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *outPath)
}

// runCell builds a fresh n-node ring over one shared ensemble, warms
// every block, then measures a 7:3 read/write Zipf mix. In killed mode
// one node dies right before measurement, so the whole window runs
// degraded: reads fall through to surviving replicas, writes to the dead
// owner go through hinted handoff.
func runCell(nNodes int, killOne bool, workers int, dur time.Duration) (result, error) {
	be := store.NewMem()
	be.AddVolume(0, 0, volBytes)
	nodes := make([]*bNode, nNodes)
	addrs := make([]string, nNodes)
	for i := range nodes {
		n, err := startNode(be)
		if err != nil {
			return result{}, err
		}
		defer n.kill()
		defer n.st.Close()
		nodes[i], addrs[i] = n, n.addr
	}

	replicas := 2
	if nNodes == 1 {
		replicas = 1
	}
	cl, err := cluster.New(cluster.Config{
		Nodes:       addrs,
		Replicas:    replicas,
		WriteQuorum: 1,
		WriteBack:   true,
		Dial: appliance.DialOptions{
			Timeout:          2 * time.Second,
			DialTimeout:      250 * time.Millisecond,
			ReconnectBackoff: 5 * time.Millisecond,
		},
		ProbeEvery: 50 * time.Millisecond,
	})
	if err != nil {
		return result{}, err
	}
	defer cl.Close()

	// Warm: every block written once, so reads always hit real data.
	wbuf := make([]byte, block.Size)
	for i := range wbuf {
		wbuf[i] = 0xC3
	}
	for b := uint64(0); b < spanBlocks; b++ {
		if err := cl.WriteAt(0, 0, wbuf, b*block.Size); err != nil {
			return result{}, fmt.Errorf("warm block %d: %w", b, err)
		}
	}

	if killOne {
		nodes[nNodes-1].kill()
	}
	base := cl.ClusterStats()

	var (
		mu      sync.Mutex
		samples []time.Duration
		errs    int64
	)
	deadline := time.Now().Add(dur)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			zipf := rand.NewZipf(rng, 1.2, 1, spanBlocks-1)
			buf := make([]byte, block.Size)
			local := make([]time.Duration, 0, 1<<18)
			var localErrs int64
			for time.Now().Before(deadline) {
				off := zipf.Uint64() * block.Size
				t0 := time.Now()
				var err error
				if rng.Intn(10) >= 7 {
					err = cl.WriteAt(0, 0, buf, off)
				} else {
					err = cl.ReadAt(0, 0, buf, off)
				}
				if err != nil {
					localErrs++
					continue
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			samples = append(samples, local...)
			errs += localErrs
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := cl.ClusterStats()

	if len(samples) == 0 {
		return result{}, fmt.Errorf("no ops completed (%d errors)", errs)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(samples)-1))
		return float64(samples[i]) / float64(time.Microsecond)
	}
	mode := "healthy"
	if killOne {
		mode = "one-killed"
	}
	return result{
		Nodes:    nNodes,
		Replicas: replicas,
		Mode:     mode,
		Workers:  workers,
		Ops:      len(samples),
		OpsPerS:  float64(len(samples)) / elapsed.Seconds(),
		P50us:    pct(0.50),
		P99us:    pct(0.99),
		Errors:   errs,
		Hinted:   st.Hinted - base.Hinted,
		Fallthru: st.Fallthroughs - base.Fallthroughs,
	}, nil
}
