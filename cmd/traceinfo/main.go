// Command traceinfo reproduces the paper's Section 2 trace analyses —
// Table 1's summary and the popularity-skew statistics behind Figures 2
// and 3 — for a trace file (MSR CSV or binary) or a freshly generated
// synthetic trace.
//
// Usage:
//
//	traceinfo -scale 8192                 # analyze a synthetic trace
//	traceinfo -in trace.csv -format csv   # analyze a trace file
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/analysis"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceinfo: ")
	var (
		in     = flag.String("in", "", "trace file to analyze (empty: generate synthetic)")
		format = flag.String("format", "csv", "input format: csv or bin")
		scale  = flag.Int("scale", 8192, "scale for synthetic generation")
		seed   = flag.Int64("seed", 1, "synthetic generator seed")
		topPct = flag.Float64("top", 0.01, "popularity cut for the hot-set share")
		gaps   = flag.Bool("gaps", false, "also report the reuse-gap distribution by popularity class")
	)
	flag.Parse()

	names := &trace.NameTable{}
	// open returns a fresh reader over the input (the gap analysis reads
	// the trace twice). File handles are read to EOF within this process;
	// process exit cleans them up.
	open := func() (trace.Reader, error) {
		if *in == "" {
			cfg := workload.Default(*scale)
			cfg.Seed = *seed
			gen, err := workload.New(cfg)
			if err != nil {
				return nil, err
			}
			names = gen.Names()
			return gen.Reader(), nil
		}
		f, err := os.Open(*in)
		if err != nil {
			return nil, err
		}
		switch *format {
		case "csv":
			return trace.NewCSVReader(f, names, 0), nil
		case "bin":
			return trace.NewBinaryReader(f), nil
		default:
			return nil, fmt.Errorf("unknown format %q", *format)
		}
	}
	reader, err := open()
	if err != nil {
		log.Fatal(err)
	}

	// Split into per-day counters plus per-server roll-ups in one pass.
	var dayCounters []*analysis.Counter
	perServer := map[int]*analysis.Counter{}
	var requests, accesses int64
	for {
		req, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		d := trace.DayOf(req.Time)
		for len(dayCounters) <= d {
			dayCounters = append(dayCounters, analysis.NewCounter())
		}
		dayCounters[d].AddRequest(&req)
		sc := perServer[req.Server]
		if sc == nil {
			sc = analysis.NewCounter()
			perServer[req.Server] = sc
		}
		sc.AddRequest(&req)
		requests++
		accesses += int64(req.Blocks())
	}

	fmt.Printf("trace: %d requests, %d block accesses, %d days\n\n", requests, accesses, len(dayCounters))

	fmt.Println("Per-day popularity skew (paper §2, O1):")
	fmt.Printf("%-5s %12s %12s %10s %8s %8s %8s\n", "Day", "Accesses", "Unique", "top-share", "once", "≤4", "≤10")
	for d, c := range dayCounters {
		if c.Total() == 0 {
			continue
		}
		fmt.Printf("%-5d %12d %12d %10.3f %8.3f %8.3f %8.3f\n",
			d, c.Total(), c.Unique(), c.TopShare(*topPct), c.CountLE(1), c.CountLE(4), c.CountLE(10))
	}

	fmt.Println("\nPer-server skew (whole trace, O2):")
	fmt.Printf("%-10s %12s %12s %10s\n", "Server", "Accesses", "Unique", "top-share")
	for id := 0; id < len(perServer)+16; id++ {
		c, ok := perServer[id]
		if !ok {
			continue
		}
		fmt.Printf("%-10s %12d %12d %10.3f\n", names.Name(id), c.Total(), c.Unique(), c.TopShare(*topPct))
	}

	if len(dayCounters) > 1 {
		fmt.Println("\nDay-over-day top-set overlap (O2):")
		prev := dayCounters[0].TopFraction(*topPct)
		for d := 1; d < len(dayCounters); d++ {
			cur := dayCounters[d].TopFraction(*topPct)
			fmt.Printf("  day %d→%d: %.2f\n", d-1, d, analysis.Overlap(prev, cur))
			prev = cur
		}
	}

	if *gaps {
		fmt.Println()
		report, err := analysis.ReuseGaps(open, analysis.DefaultGapClasses())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(report.String())
	}
}
