# SieveStore reproduction — common developer targets.

GO ?= go

.PHONY: all build test race test-chaos test-cluster test-tenant cover bench bench-smoke bench-hot bench-wire bench-tier bench-cluster experiments fuzz test-fuzz fmt vet lint clean

# Tier-1 flow: compile, static checks, unit tests, the race detector over
# every package (the concurrent store/appliance paths must stay
# race-clean), then the cluster suite, the multi-tenant QoS suite, and a
# smoke pass over the concurrency benchmarks.
all: build vet lint test race test-cluster test-tenant bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection chaos run under the race detector: concurrent I/O and
# epoch rotations against a backend that fails, hangs, and spikes, plus
# cache-device and spill faults — asserting no deadlock, no stale data,
# and clean recovery out of every degraded mode.
test-chaos:
	$(GO) test -race -count=1 -v -run 'TestChaos' ./internal/core/

# Multi-tenant QoS suite under the race detector: the adversarial
# noisy-neighbor scenario (quotas keep a stable tenant within 2% of its
# solo hit ratio while a churner degrades the unguarded run ≥5%), the
# endurance-budget caps, the accounting no-double-count fence, and the
# quota-repartition stress run across rotations/flushes/snapshots.
test-tenant:
	$(GO) test -race -count=1 -run 'TestTenant' ./internal/core/
	$(GO) test -race -count=1 ./internal/tenant/

# Replicated-cluster suite under the race detector, including the
# multi-node chaos run (kill/restart mid-load over an N=3 R=2 ring:
# zero lost acked writes, no stale reads past the version floor,
# automatic re-replication back to full R).
test-cluster:
	$(GO) test -race -count=1 ./internal/cluster/

# Deeper static analysis, skipped gracefully where the tools aren't
# installed (this container has neither; no network installs). When
# staticcheck/govulncheck are on PATH they become part of tier-1 via
# `all`.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "lint: govulncheck not installed, skipping"; fi

# Coverage floors for the observability-critical packages: the metrics
# primitives feed operator-facing numbers, the appliance parses
# untrusted network input, and the cache package is the pluggable
# eviction-policy seam every variant sits on — all must stay thoroughly
# tested. Other packages report coverage without a floor.
COVER_FLOOR_metrics    := 90
COVER_FLOOR_appliance  := 80
COVER_FLOOR_cache      := 90
COVER_FLOOR_tier       := 85
COVER_FLOOR_tenant     := 85

cover:
	@out=$$($(GO) test -cover ./internal/...); echo "$$out"; fail=0; \
	for spec in metrics:$(COVER_FLOOR_metrics) appliance:$(COVER_FLOOR_appliance) cache:$(COVER_FLOOR_cache) tier:$(COVER_FLOOR_tier) tenant:$(COVER_FLOOR_tenant); do \
	  pkg=$${spec%%:*}; floor=$${spec##*:}; \
	  pct=$$(echo "$$out" | awk -v p="repro/internal/$$pkg" \
	    '$$2==p { for (i=1; i<=NF; i++) if ($$i ~ /%$$/) { gsub(/%/, "", $$i); print $$i } }'); \
	  if [ -z "$$pct" ]; then echo "cover: FAIL no coverage reported for internal/$$pkg"; fail=1; \
	  elif awk -v a="$$pct" -v b="$$floor" 'BEGIN { exit !(a < b) }'; then \
	    echo "cover: FAIL internal/$$pkg at $$pct% (floor $$floor%)"; fail=1; \
	  else echo "cover: internal/$$pkg $$pct% >= $$floor%"; fi; \
	done; exit $$fail

# One benchmark per paper table/figure plus hot-path micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# Fast sanity pass over the concurrency benchmarks: proves the store still
# serves hits during rotations and scales across clients, without the full
# bench run's cost.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkConcurrentStore|BenchmarkRotationWhileServing' -benchtime 100ms .

# Wire-protocol throughput/latency matrix: v1 vs v2 at 1/8/32 clients over
# a 1 ms-latency backend, written as BENCH_wire.json for CI trend lines.
# The v2 acceptance bar: shared-conn ops/s at ≥8 clients must beat v1
# shared-conn by ≥2× (pipelining must actually overlap the backend waits).
bench-wire:
	$(GO) run ./cmd/benchwire -out BENCH_wire.json

# RAM-tier cost-performance matrix: the golden Zipf workload at tier sizes
# {off, 5%, 10% of the SSD cache} × {read, readwrite}, written as
# BENCH_tier.json for CI trend lines. The tier-hit fraction shows the
# paper's selectivity effect one level up: a few percent of capacity
# absorbing the majority of read hits.
bench-tier:
	$(GO) run ./cmd/benchtier -out BENCH_tier.json

# Cluster scale-out matrix: mixed Zipf read/write load against in-process
# rings of 1/3/5 appliance nodes, healthy and with one node killed,
# written as BENCH_cluster.json for CI trend lines. The degraded rows show
# the failover tax: reads fall through to surviving replicas, writes to
# the dead owner go through hinted handoff.
bench-cluster:
	$(GO) run ./cmd/benchcluster -out BENCH_cluster.json

# Hit-path scaling sweep: pure cache-hit throughput at 1–8 GOMAXPROCS for
# Shards=1 vs Shards=8. The headline number for the sharded-store work;
# compare ns/op across -cpu to see lock-contention scaling.
bench-hot:
	$(GO) test -run '^$$' -bench BenchmarkHitPathParallel -cpu 1,2,4,8 .

# Full evaluation at the default reproduction scale (minutes).
experiments:
	$(GO) run ./cmd/experiments | tee experiments_output.txt

# Quick evaluation pass.
experiments-quick:
	$(GO) run ./cmd/experiments -scale 4096 -skip-sweeps

fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzBinaryReader -fuzztime 30s -run XXX
	$(GO) test ./internal/trace/ -fuzz FuzzCSVReader -fuzztime 30s -run XXX
	$(GO) test ./internal/core/ -fuzz FuzzLoadSnapshot -fuzztime 30s -run XXX
	$(GO) test ./internal/appliance/ -fuzz 'FuzzFrameRoundTrip$$' -fuzztime 30s -run XXX
	$(GO) test ./internal/appliance/ -fuzz 'FuzzFrameRoundTripV2$$' -fuzztime 30s -run XXX
	$(GO) test ./internal/appliance/ -fuzz FuzzServerInput -fuzztime 30s -run XXX
	$(GO) test ./internal/appliance/ -fuzz FuzzClientResponse -fuzztime 30s -run XXX
	$(GO) test ./internal/tenant/ -fuzz FuzzTenantAccounting -fuzztime 30s -run XXX

# Quick smoke over every fuzz target (seed corpora + 5s of new inputs
# each) — cheap enough for pre-commit; `make fuzz` is the long soak.
test-fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzBinaryReader -fuzztime 5s -run XXX
	$(GO) test ./internal/trace/ -fuzz FuzzCSVReader -fuzztime 5s -run XXX
	$(GO) test ./internal/core/ -fuzz FuzzLoadSnapshot -fuzztime 5s -run XXX
	$(GO) test ./internal/appliance/ -fuzz 'FuzzFrameRoundTrip$$' -fuzztime 5s -run XXX
	$(GO) test ./internal/appliance/ -fuzz 'FuzzFrameRoundTripV2$$' -fuzztime 5s -run XXX
	$(GO) test ./internal/appliance/ -fuzz FuzzServerInput -fuzztime 5s -run XXX
	$(GO) test ./internal/appliance/ -fuzz FuzzClientResponse -fuzztime 5s -run XXX
	$(GO) test ./internal/tenant/ -fuzz FuzzTenantAccounting -fuzztime 5s -run XXX

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
