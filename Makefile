# SieveStore reproduction — common developer targets.

GO ?= go

.PHONY: all build test race test-chaos cover bench bench-smoke bench-hot experiments fuzz fmt vet clean

# Tier-1 flow: compile, static checks, unit tests, the race detector over
# every package (the concurrent store/appliance paths must stay
# race-clean), then a smoke pass over the concurrency benchmarks.
all: build vet test race bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection chaos run under the race detector: concurrent I/O and
# epoch rotations against a backend that fails, hangs, and spikes, plus
# cache-device and spill faults — asserting no deadlock, no stale data,
# and clean recovery out of every degraded mode.
test-chaos:
	$(GO) test -race -count=1 -v -run 'TestChaos' ./internal/core/

cover:
	$(GO) test -cover ./internal/...

# One benchmark per paper table/figure plus hot-path micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# Fast sanity pass over the concurrency benchmarks: proves the store still
# serves hits during rotations and scales across clients, without the full
# bench run's cost.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkConcurrentStore|BenchmarkRotationWhileServing' -benchtime 100ms .

# Hit-path scaling sweep: pure cache-hit throughput at 1–8 GOMAXPROCS for
# Shards=1 vs Shards=8. The headline number for the sharded-store work;
# compare ns/op across -cpu to see lock-contention scaling.
bench-hot:
	$(GO) test -run '^$$' -bench BenchmarkHitPathParallel -cpu 1,2,4,8 .

# Full evaluation at the default reproduction scale (minutes).
experiments:
	$(GO) run ./cmd/experiments | tee experiments_output.txt

# Quick evaluation pass.
experiments-quick:
	$(GO) run ./cmd/experiments -scale 4096 -skip-sweeps

fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzBinaryReader -fuzztime 30s -run XXX
	$(GO) test ./internal/trace/ -fuzz FuzzCSVReader -fuzztime 30s -run XXX
	$(GO) test ./internal/core/ -fuzz FuzzLoadSnapshot -fuzztime 30s -run XXX

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
