// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (see DESIGN.md's per-experiment index). Each
// BenchmarkTable*/BenchmarkFig*/BenchmarkSec* target rebuilds one artifact
// from a shared experiment run (done once, at a reduced scale) and reports
// its headline numbers as benchmark metrics; -v additionally logs the full
// rows. Micro-benchmarks at the bottom measure the hot paths themselves.
//
//	go test -bench=. -benchmem                  # everything
//	go test -bench=BenchmarkFig5 -v             # one figure, with its rows
package repro

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/appliance"
	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/sieve"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// benchScale trades fidelity for time: the full experiment at this scale
// runs in a few seconds. cmd/experiments regenerates everything at the
// default 1/512 scale.
const benchScale = 16384

var (
	benchOnce    sync.Once
	benchResults *exp.Results
	benchErr     error
)

func results(b *testing.B) *exp.Results {
	b.Helper()
	benchOnce.Do(func() {
		benchResults, benchErr = exp.Run(exp.DefaultConfig(benchScale))
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchResults
}

// BenchmarkTable1TraceSummary regenerates Table 1 (the ensemble/trace
// roster summary).
func BenchmarkTable1TraceSummary(b *testing.B) {
	res := results(b)
	var table string
	for i := 0; i < b.N; i++ {
		table = res.Table1()
	}
	b.Logf("\n%s", table)
	b.ReportMetric(float64(res.TraceStats.Requests), "requests")
	b.ReportMetric(float64(res.TraceStats.UniqueBlocks), "unique-blocks")
}

// BenchmarkTable2AllocationPolicyImpact regenerates the analytic Table 2.
func BenchmarkTable2AllocationPolicyImpact(b *testing.B) {
	var rows []sieve.Table2Row
	for i := 0; i < b.N; i++ {
		rows = sieve.Table2(0.35, 0.75, 0)
	}
	b.Logf("%+v", rows)
	b.ReportMetric(rows[0].SSDWrites*100, "AOD-ssd-writes-%")
	b.ReportMetric(rows[1].SSDWrites*100, "WMNA-ssd-writes-%")
	b.ReportMetric(rows[2].SSDOps*100, "ISA-ssd-ops-%")
}

// BenchmarkFig2aAccessCountDistribution regenerates Figure 2(a).
func BenchmarkFig2aAccessCountDistribution(b *testing.B) {
	res := results(b)
	var table string
	for i := 0; i < b.N; i++ {
		table = res.Fig2a()
	}
	b.Logf("\n%s", table)
	// Headline: the top-1% boundary sits near 10 accesses/day (O1).
	day := res.DayInfo[2]
	for _, bin := range day.Bins {
		if bin.UpperPercentile >= 0.01 {
			b.ReportMetric(bin.AvgCount, "top1pct-bin-avg-count")
			break
		}
	}
}

// BenchmarkFig2bPopularityCDF regenerates Figure 2(b).
func BenchmarkFig2bPopularityCDF(b *testing.B) {
	res := results(b)
	var table string
	for i := 0; i < b.N; i++ {
		table = res.Fig2b()
	}
	b.Logf("\n%s", table)
	b.ReportMetric(res.DayInfo[2].Top1Share*100, "day2-top1pct-share-%")
}

// BenchmarkFig2cZoomCDF regenerates Figure 2(c) (the top-5% zoom is the
// same CDF restricted to the knee).
func BenchmarkFig2cZoomCDF(b *testing.B) {
	res := results(b)
	var knee float64
	for i := 0; i < b.N; i++ {
		for _, p := range res.DayInfo[2].CDF {
			if p.Percentile >= 0.05 {
				knee = p.CumFraction
				break
			}
		}
	}
	b.ReportMetric(knee*100, "day2-top5pct-share-%")
}

// BenchmarkFig3aServerVariation regenerates Figure 3(a).
func BenchmarkFig3aServerVariation(b *testing.B) {
	res := results(b)
	var prxy, src1 float64
	for i := 0; i < b.N; i++ {
		prxy = cdfAt(res.Skew.PrxyDay2, 0.01)
		src1 = cdfAt(res.Skew.Src1Day2, 0.01)
	}
	b.ReportMetric(prxy*100, "prxy-top1pct-%")
	b.ReportMetric(src1*100, "src1-top1pct-%")
}

// BenchmarkFig3bVolumeVariation regenerates Figure 3(b).
func BenchmarkFig3bVolumeVariation(b *testing.B) {
	res := results(b)
	var v0, v1 float64
	for i := 0; i < b.N; i++ {
		v0 = cdfAt(res.Skew.WebVol0Day2, 0.01)
		v1 = cdfAt(res.Skew.WebVol1Day2, 0.01)
	}
	b.ReportMetric(v0*100, "web-vol0-top1pct-%")
	b.ReportMetric(v1*100, "web-vol1-top1pct-%")
}

// BenchmarkFig3cTimeVariation regenerates Figure 3(c).
func BenchmarkFig3cTimeVariation(b *testing.B) {
	res := results(b)
	var d3, d5 float64
	for i := 0; i < b.N; i++ {
		d3 = cdfAt(res.Skew.StgDay3, 0.01)
		d5 = cdfAt(res.Skew.StgDay5, 0.01)
	}
	b.ReportMetric(d3*100, "stg-day3-top1pct-%")
	b.ReportMetric(d5*100, "stg-day5-top1pct-%")
}

// BenchmarkFig3dTop1Composition regenerates Figure 3(d).
func BenchmarkFig3dTop1Composition(b *testing.B) {
	res := results(b)
	var table string
	for i := 0; i < b.N; i++ {
		table = res.Fig3()
	}
	b.Logf("\n%s", table)
	// Headline: the composition varies day to day; report one server's swing.
	minS, maxS := 1.0, 0.0
	for _, di := range res.DayInfo[1:] {
		s := di.Composition[0] // usr
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	b.ReportMetric(minS*100, "usr-share-min-%")
	b.ReportMetric(maxS*100, "usr-share-max-%")
}

// BenchmarkFig5AccessesCaptured regenerates Figure 5.
func BenchmarkFig5AccessesCaptured(b *testing.B) {
	res := results(b)
	var table string
	for i := 0; i < b.N; i++ {
		table = res.Fig5()
	}
	b.Logf("\n%s", table)
	b.ReportMetric(100*res.Policies[exp.PIdeal].Total().HitRatio(), "ideal-hit-%")
	b.ReportMetric(100*res.Policies[exp.PSieveD].Total().HitRatio(), "sievestore-d-hit-%")
	b.ReportMetric(100*res.Policies[exp.PSieveC].Total().HitRatio(), "sievestore-c-hit-%")
	b.ReportMetric(100*res.Policies[exp.PWMNA32].Total().HitRatio(), "wmna32-hit-%")
	b.ReportMetric(100*(res.GainOverUnsieved(exp.PSieveD)-1), "d-gain-over-unsieved-%")
	b.ReportMetric(100*(res.GainOverUnsieved(exp.PSieveC)-1), "c-gain-over-unsieved-%")
}

// BenchmarkFig6AllocationWrites regenerates Figure 6.
func BenchmarkFig6AllocationWrites(b *testing.B) {
	res := results(b)
	var table string
	for i := 0; i < b.N; i++ {
		table = res.Fig6()
	}
	b.Logf("\n%s", table)
	c := res.Policies[exp.PSieveC].Total().AllocWrites
	u := res.Policies[exp.PWMNA32].Total().AllocWrites
	d := res.Policies[exp.PSieveD].Total().Moves
	b.ReportMetric(float64(c), "sievestore-c-allocs")
	b.ReportMetric(float64(d), "sievestore-d-moves")
	b.ReportMetric(float64(u)/float64(c), "unsieved-blowup-x")
}

// BenchmarkFig7SSDAccesses regenerates Figure 7.
func BenchmarkFig7SSDAccesses(b *testing.B) {
	res := results(b)
	var table string
	for i := 0; i < b.N; i++ {
		table = res.Fig7()
	}
	b.Logf("\n%s", table)
	cTot := res.Policies[exp.PSieveC].Total()
	uTot := res.Policies[exp.PWMNA32].Total()
	b.ReportMetric(float64(cTot.SSDOps()), "sievestore-c-ssd-ops")
	b.ReportMetric(float64(uTot.SSDOps()), "wmna32-ssd-ops")
	b.ReportMetric(float64(uTot.AllocWrites)/float64(uTot.SSDOps()+1), "wmna32-alloc-fraction")
}

// BenchmarkFig8IOPSOccupancy regenerates Figure 8.
func BenchmarkFig8IOPSOccupancy(b *testing.B) {
	res := results(b)
	var sieveOcc, wmnaOcc exp.OccupancyAnalysis
	for i := 0; i < b.N; i++ {
		sieveOcc = res.Occupancy(exp.PSieveC)
		wmnaOcc = res.Occupancy(exp.PWMNA32)
	}
	b.ReportMetric(sieveOcc.MaxOccupancy, "sievestore-c-max-occ")
	b.ReportMetric(100*sieveOcc.FracUnder1, "sievestore-c-under1-%")
	b.ReportMetric(wmnaOcc.MaxOccupancy, "wmna32-max-occ")
}

// BenchmarkFig9DrivesNeeded regenerates Figure 9.
func BenchmarkFig9DrivesNeeded(b *testing.B) {
	res := results(b)
	var table string
	for i := 0; i < b.N; i++ {
		table = res.Fig89()
	}
	b.Logf("\n%s", table)
	sd := res.Occupancy(exp.PSieveD)
	sc := res.Occupancy(exp.PSieveC)
	w := res.Occupancy(exp.PWMNA32)
	b.ReportMetric(float64(sd.Coverage[2].Drives), "sievestore-d-drives@99.9")
	b.ReportMetric(float64(sc.Coverage[2].Drives), "sievestore-c-drives@99.9")
	b.ReportMetric(float64(w.Coverage[2].Drives), "wmna32-drives@99.9")
}

// BenchmarkSec53PerServer regenerates the §5.3 ensemble-vs-per-server
// comparison.
func BenchmarkSec53PerServer(b *testing.B) {
	res := results(b)
	var table string
	for i := 0; i < b.N; i++ {
		table = res.Sec53()
	}
	b.Logf("\n%s", table)
	var ens, elastic, static float64
	for d := 2; d < res.Days; d++ {
		ens += res.EnsembleShared[d].HitRatio()
		elastic += res.PerServerElastic[d].HitRatio()
		static += res.PerServerStatic[d].HitRatio()
	}
	n := float64(res.Days - 2)
	b.ReportMetric(100*ens/n, "ensemble-hit-%")
	b.ReportMetric(100*elastic/n, "perserver-elastic-hit-%")
	b.ReportMetric(100*static/n, "perserver-static-hit-%")
}

// BenchmarkSensitivityDThreshold regenerates the §5.1 SieveStore-D
// threshold sweep.
func BenchmarkSensitivityDThreshold(b *testing.B) {
	cfg := exp.DefaultConfig(benchScale * 2)
	var rows []exp.DThresholdRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.SensitivityD(cfg, []int64{8, 10, 14, 20})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("%+v", rows)
	b.ReportMetric(rows[1].HitRatio*100, "t10-hit-%")
	b.ReportMetric(rows[3].HitRatio*100, "t20-hit-%")
}

// BenchmarkSensitivityCWindow regenerates the §5.1 window sweep.
func BenchmarkSensitivityCWindow(b *testing.B) {
	cfg := exp.DefaultConfig(benchScale * 2)
	var rows []exp.CWindowRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.SensitivityCWindow(cfg, []time.Duration{2 * time.Hour, 8 * time.Hour})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("%+v", rows)
	b.ReportMetric(rows[0].HitRatio*100, "w2h-hit-%")
	b.ReportMetric(rows[1].HitRatio*100, "w8h-hit-%")
}

// BenchmarkAblationSingleTier regenerates the two-tier-vs-single-tier
// ablation (DESIGN.md).
func BenchmarkAblationSingleTier(b *testing.B) {
	cfg := exp.DefaultConfig(benchScale * 2)
	var rows []exp.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.AblationSingleTier(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("%+v", rows)
	b.ReportMetric(float64(rows[1].AllocWrites)/float64(rows[0].AllocWrites), "single-tier-alloc-blowup-x")
}

// BenchmarkFig1Quadrants regenerates the Figure 1 design-space matrix
// (sieved/unsieved × ensemble/per-server) as four full simulations.
func BenchmarkFig1Quadrants(b *testing.B) {
	cfg := exp.DefaultConfig(benchScale)
	var rows []exp.QuadrantResult
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = exp.Quadrants(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", exp.FormatQuadrants(rows))
	b.ReportMetric(100*rows[0].HitRatio, "QI-sieved-ensemble-hit-%")
	b.ReportMetric(100*rows[1].HitRatio, "QII-unsieved-ensemble-hit-%")
	b.ReportMetric(100*rows[3].HitRatio, "QIV-sieved-perserver-hit-%")
	b.ReportMetric(float64(rows[0].Drives), "QI-drives")
	b.ReportMetric(float64(rows[2].Drives), "QIII-drives")
}

// BenchmarkEnduranceLifetime regenerates the §5.1 endurance estimate.
func BenchmarkEnduranceLifetime(b *testing.B) {
	res := results(b)
	var life float64
	for i := 0; i < b.N; i++ {
		_, life = res.Endurance(exp.PSieveC)
	}
	b.ReportMetric(life, "sievestore-c-lifetime-years")
}

// cdfAt reads a CDF curve at a percentile.
func cdfAt(points []analysis.CDFPoint, pct float64) float64 {
	for _, p := range points {
		if p.Percentile >= pct {
			return p.CumFraction
		}
	}
	if len(points) == 0 {
		return 0
	}
	return points[len(points)-1].CumFraction
}

// ---- hot-path micro-benchmarks ----

// BenchmarkWorkloadDayGeneration measures synthesizing one trace day.
func BenchmarkWorkloadDayGeneration(b *testing.B) {
	gen, err := workload.New(workload.Default(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Day(2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorDay measures simulating one day under SieveStore-C.
func BenchmarkSimulatorDay(b *testing.B) {
	gen, err := workload.New(workload.Default(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := gen.Day(2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := exp.DefaultConfig(benchScale)
	var accesses int64
	for _, r := range reqs {
		accesses += int64(r.Blocks())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		policy, err := sieve.NewC(cfg.SieveC)
		if err != nil {
			b.Fatal(err)
		}
		c := sim.NewContinuous(cfg.CacheBlocks(cfg.CacheGB), policy)
		for j := range reqs {
			c.Process(&reqs[j])
		}
	}
	b.ReportMetric(float64(accesses), "block-accesses/op")
}

// BenchmarkSieveCShouldAllocate measures the per-miss sieve decision.
func BenchmarkSieveCShouldAllocate(b *testing.B) {
	policy, err := sieve.NewC(sieve.DefaultCConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := block.Access{
			Time: int64(i) * 1e6,
			Key:  block.MakeKey(i&7, 0, uint64(i%100000)),
			Kind: block.Read,
		}
		policy.ShouldAllocate(acc)
	}
}

// BenchmarkCoreReadHit measures a cached 4 KiB read through the library.
func BenchmarkCoreReadHit(b *testing.B) {
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<24)
	st, err := core.Open(be, core.Options{
		CacheBytes: 1 << 20,
		SieveC:     sieve.CConfig{IMCTSize: 1 << 12, T1: 1, T2: 1, Window: time.Hour, Subwindows: 4},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	buf := make([]byte, 4096)
	// Heat the block (T1=1,T2=1 admits on the 2nd miss).
	for i := 0; i < 3; i++ {
		if err := st.ReadAt(0, 0, buf, 0); err != nil {
			b.Fatal(err)
		}
	}
	if !st.Contains(0, 0, 0) {
		b.Fatal("setup: block not cached")
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.ReadAt(0, 0, buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreReadMiss measures an uncached 4 KiB read (backend path +
// sieve consultation).
func BenchmarkCoreReadMiss(b *testing.B) {
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<30)
	st, err := core.Open(be, core.Options{CacheBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := uint64(i%(1<<17)) * 4096
		if err := st.ReadAt(0, 0, buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

// newLatencyStore builds a Store over a 1 ms-per-request sleeping backend —
// slow enough that lock-vs-I/O overlap dominates the measurement.
func newLatencyStore(b *testing.B) (*core.Store, *store.Latency) {
	b.Helper()
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<30)
	lat := store.NewLatency(mem)
	lat.PerRequest = time.Millisecond
	lat.PerByte = 0
	lat.Sleep = true
	st, err := core.Open(lat, core.Options{
		CacheBytes:   1 << 22,
		SieveC:       sieve.CConfig{IMCTSize: 1 << 16, T1: 2, T2: 2, Window: time.Hour, Subwindows: 4},
		TrackLatency: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return st, lat
}

// BenchmarkConcurrentStore measures aggregate miss-path read throughput as
// client goroutines grow. Every read targets a distinct block, so each op
// pays the backend's 1 ms service time; with the store lock released during
// backend I/O the per-op wall time should fall near-linearly with clients
// (the acceptance bar is ≥2× aggregate throughput at 8 clients vs 1).
func BenchmarkConcurrentStore(b *testing.B) {
	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			st, _ := newLatencyStore(b)
			defer st.Close()
			var next atomic.Int64
			b.SetBytes(4096)
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					buf := make([]byte, 4096)
					for {
						i := next.Add(1) - 1
						if i >= int64(b.N) {
							return
						}
						off := uint64(i%(1<<16)) * 4096
						if err := st.ReadAt(0, 0, buf, off); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
		})
	}
}

// BenchmarkRotationWhileServing measures cached-read latency while
// SieveStore-D epoch rotations run against a slow (50 ms per request)
// ensemble. The during-rotation case continuously forces rotations whose
// batch fetches hit the 50 ms backend; cached reads must keep being served
// at memory speed instead of stalling behind the rotation. (The old design
// held the store lock across the rotation's per-block backend fetches, so
// every hit waited out the whole epoch move — hundreds of milliseconds.)
// max-hit-ms reports the worst single cached read observed.
func BenchmarkRotationWhileServing(b *testing.B) {
	for _, rotating := range []bool{false, true} {
		name := "baseline"
		if rotating {
			name = "during-rotation"
		}
		b.Run(name, func(b *testing.B) {
			mem := store.NewMem()
			mem.AddVolume(0, 0, 1<<30)
			lat := store.NewLatency(mem)
			lat.PerRequest = 50 * time.Millisecond
			lat.PerByte = 0
			lat.Sleep = true
			st, err := core.Open(lat, core.Options{
				CacheBytes: 1 << 20,
				Variant:    core.VariantD,
				DThreshold: 1,
				Epoch:      time.Hour,
				SpillDir:   b.TempDir(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			buf := make([]byte, 4096)
			if err := st.ReadAt(0, 0, buf, 0); err != nil { // log the hot blocks
				b.Fatal(err)
			}
			if err := st.RotateEpoch(); err != nil { // and move them in
				b.Fatal(err)
			}
			if !st.Contains(0, 0, 0) {
				b.Fatal("setup: hot block not cached")
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			if rotating {
				wg.Add(1)
				go func() {
					defer wg.Done()
					scratch := make([]byte, 4096)
					next := uint64(1 << 16) // far from the hot blocks
					for {
						select {
						case <-stop:
							return
						default:
						}
						// Log a fresh cold extent, then force a rotation
						// that must fetch it from the 50 ms ensemble. (The
						// hot blocks stay selected: the measurement loop
						// keeps logging them, and the threshold is 1.)
						if err := st.ReadAt(0, 0, scratch, next*4096); err != nil {
							b.Error(err)
							return
						}
						next++
						if err := st.RotateEpoch(); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			var maxHit time.Duration
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if err := st.ReadAt(0, 0, buf, 0); err != nil {
					b.Fatal(err)
				}
				if d := time.Since(t0); d > maxHit {
					maxHit = d
				}
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			b.ReportMetric(float64(maxHit)/1e6, "max-hit-ms")
		})
	}
}

// BenchmarkConcurrentAppliance is the same scaling probe end-to-end: N
// client goroutines against one appliance server over loopback, across the
// three wire configurations that matter:
//
//   - v1/conn-per-client: the legacy protocol's only way to overlap I/O —
//     one TCP connection (and server goroutine) per client.
//   - v1/shared-conn: N goroutines multiplexed over ONE connection. v1 is
//     strictly request/response, so the client mutex serializes every op;
//     throughput pins near 1/latency regardless of N. This is the baseline
//     the tagged-frame work exists to fix.
//   - v2/shared-conn: the same single connection, but v2 tags let all N
//     requests stay in flight at once; throughput should track
//     conn-per-client without the N-sockets cost.
func BenchmarkConcurrentAppliance(b *testing.B) {
	for _, mode := range []struct {
		name   string
		proto  int
		shared bool
	}{
		{"v1-conn-per-client", appliance.ProtocolV1, false},
		{"v1-shared-conn", appliance.ProtocolV1, true},
		{"v2-shared-conn", appliance.ProtocolV2, true},
	} {
		for _, clients := range []int{1, 8, 32} {
			b.Run(fmt.Sprintf("%s/clients=%d", mode.name, clients), func(b *testing.B) {
				st, _ := newLatencyStore(b)
				defer st.Close()
				srv := appliance.NewServer(st)
				l, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				done := make(chan struct{})
				go func() { defer close(done); srv.Serve(l) }()
				defer func() { srv.Close(); <-done }()

				dial := func() *appliance.Client {
					c, err := appliance.DialWith(l.Addr().String(),
						appliance.DialOptions{Protocol: mode.proto})
					if err != nil {
						b.Fatal(err)
					}
					return c
				}
				conns := make([]*appliance.Client, clients)
				if mode.shared {
					shared := dial()
					defer shared.Close()
					for i := range conns {
						conns[i] = shared
					}
				} else {
					for i := range conns {
						conns[i] = dial()
						defer conns[i].Close()
					}
				}
				var next atomic.Int64
				b.SetBytes(4096)
				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < clients; g++ {
					wg.Add(1)
					go func(c *appliance.Client) {
						defer wg.Done()
						buf := make([]byte, 4096)
						for {
							i := next.Add(1) - 1
							if i >= int64(b.N) {
								return
							}
							off := uint64(i%(1<<16)) * 4096
							if err := c.ReadAt(0, 0, buf, off); err != nil {
								b.Error(err)
								return
							}
						}
					}(conns[g])
				}
				wg.Wait()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
			})
		}
	}
}

// BenchmarkHitPathParallel measures cache-*hit* throughput under
// parallelism — the tentpole target of the sharded store. Every goroutine
// reads and write-through-updates blocks that are already resident, so no
// backend I/O happens inside the measured loop; the only scaling limiter
// is lock contention. Run with -cpu 1,2,4,8 and vary Shards to see the
// per-shard-lock effect; BenchmarkConcurrentStore covers the miss path.
//
// The policy dimension compares replacement engines on the hit path: LRU
// does list surgery under the shard lock on every hit, SIEVE only sets a
// visited bit, so SIEVE should be at least as fast — the gap is the price
// of recency bookkeeping, and it grows with contention (fewer shards,
// more CPUs).
func BenchmarkHitPathParallel(b *testing.B) {
	for _, shards := range []int{1, 8} {
		for _, policy := range []string{"lru", "sieve"} {
			for _, mix := range []struct {
				name   string
				writes bool
			}{{"read", false}, {"readwrite", true}} {
				// metrics=on adds the full observability cost to every op:
				// two monotonic clock reads, the striped latency histogram
				// (which also backs the flat OpLatency stats), and 1-in-64
				// op-trace sampling. The acceptance bar is <5% regression
				// against the seed's TrackLatency-only path; the gap against
				// metrics=off is dominated by the clock reads, which any
				// latency measurement pays.
				for _, obs := range []struct {
					name  string
					track bool
				}{{"metrics=off", false}, {"metrics=on", true}} {
					b.Run(fmt.Sprintf("shards=%d/policy=%s/%s/%s", shards, policy, mix.name, obs.name), func(b *testing.B) {
						const span = 4096 // resident blocks
						be := store.NewMem()
						be.AddVolume(0, 0, 2*span*block.Size)
						opts := core.Options{
							CacheBytes: 2 * span * block.Size,
							Shards:     shards,
							Policy:     policy,
							SieveC:     sieve.CConfig{IMCTSize: 1 << 14, T1: 1, T2: 1, Window: time.Hour, Subwindows: 4},
						}
						if obs.track {
							opts.TrackLatency = true
							opts.TraceSample = 64
						}
						st, err := core.Open(be, opts)
						if err != nil {
							b.Fatal(err)
						}
						defer st.Close()
						buf := make([]byte, block.Size)
						// Heat every block (T1=1,T2=1 admits on the 2nd miss).
						for pass := 0; pass < 3; pass++ {
							for blk := uint64(0); blk < span; blk++ {
								if err := st.ReadAt(0, 0, buf, blk*block.Size); err != nil {
									b.Fatal(err)
								}
							}
						}
						if got := st.Stats().CachedBlocks; got < span {
							b.Fatalf("setup: only %d/%d blocks cached", got, span)
						}
						b.SetBytes(block.Size)
						var worker atomic.Uint64
						b.ResetTimer()
						b.RunParallel(func(pb *testing.PB) {
							p := make([]byte, block.Size)
							// Distinct seed per worker so goroutines don't walk the
							// same block sequence (and thus the same shards) in near
							// lockstep.
							x := (worker.Add(1) + 1) * 0x9e3779b97f4a7c15
							for pb.Next() {
								x ^= x << 13
								x ^= x >> 7
								x ^= x << 17
								blk := x % span
								if mix.writes && x%8 == 0 {
									if err := st.WriteAt(0, 0, p, blk*block.Size); err != nil {
										b.Fatal(err)
									}
									continue
								}
								if err := st.ReadAt(0, 0, p, blk*block.Size); err != nil {
									b.Fatal(err)
								}
							}
						})
					})
				}
			}
		}
	}
}

// BenchmarkTieredHitPath measures the RAM tier's effect on hot-read
// latency at the contended shard count. With the tier off, every hit
// takes its shard's exclusive mutex (two map lookups, a policy touch,
// stats); with the tier on and the hot set promoted, a hit is a shared
// RLock, one map lookup, and a copy — no exclusive lock anywhere. The
// acceptance bar is a ≥25% ns/op reduction for shards=8/read; the
// readwrite mix shows the re-promotion cost writes impose (each write
// invalidates the tier copy, which must then earn promotion again).
func BenchmarkTieredHitPath(b *testing.B) {
	const span = 4096 // resident blocks, all tier-promotable
	for _, tiered := range []struct {
		name  string
		bytes int64
	}{{"tier=off", 0}, {"tier=on", 2 * span * block.Size}} {
		// tier=on sizes the tier at 2× the hot span: key-hash imbalance
		// across the 8 tier shards means exact-fit capacity evicts a few
		// blocks from the fuller shards.
		for _, mix := range []struct {
			name   string
			writes bool
		}{{"read", false}, {"readwrite", true}} {
			b.Run(fmt.Sprintf("shards=8/%s/%s", tiered.name, mix.name), func(b *testing.B) {
				be := store.NewMem()
				be.AddVolume(0, 0, 2*span*block.Size)
				st, err := core.Open(be, core.Options{
					CacheBytes:   2 * span * block.Size,
					Shards:       8,
					Policy:       "sieve",
					RAMTierBytes: tiered.bytes,
					// Promote on the first SSD hit: the sequential heat loop
					// defeats the aliasing filter (colliding blocks reset each
					// other every pass), and the bench measures the hit path,
					// not the admission filter.
					TierPromoteHits: 1,
					SieveC:          sieve.CConfig{IMCTSize: 1 << 14, T1: 1, T2: 1, Window: time.Hour, Subwindows: 4},
				})
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				buf := make([]byte, block.Size)
				// Heat every block (T1=1,T2=1 admits on the 2nd miss), then
				// two more hit passes to fire the promotion filter.
				for pass := 0; pass < 5; pass++ {
					for blk := uint64(0); blk < span; blk++ {
						if err := st.ReadAt(0, 0, buf, blk*block.Size); err != nil {
							b.Fatal(err)
						}
					}
				}
				if got := st.Stats().CachedBlocks; got < span {
					b.Fatalf("setup: only %d/%d blocks cached", got, span)
				}
				if tiered.bytes > 0 {
					if got := st.Stats().TierCachedBlocks; got < span {
						b.Fatalf("setup: only %d/%d blocks promoted", got, span)
					}
				}
				b.SetBytes(block.Size)
				var worker atomic.Uint64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					p := make([]byte, block.Size)
					x := (worker.Add(1) + 1) * 0x9e3779b97f4a7c15
					for pb.Next() {
						x ^= x << 13
						x ^= x >> 7
						x ^= x << 17
						blk := x % span
						if mix.writes && x%8 == 0 {
							if err := st.WriteAt(0, 0, p, blk*block.Size); err != nil {
								b.Fatal(err)
							}
							continue
						}
						if err := st.ReadAt(0, 0, p, blk*block.Size); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.StopTimer()
				if tiered.bytes > 0 {
					ts := st.Stats()
					b.ReportMetric(float64(ts.TierHits)/float64(ts.Reads+1), "tier-hit-frac")
				}
			})
		}
	}
}
